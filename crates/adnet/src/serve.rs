//! The ad-network serve endpoint: arbitration auctions over HTTP redirects.
//!
//! A slot request hits the publisher's contracted network at
//! `/serve?pub=<site>&slot=<idx>`. At every hop the handling network either
//! **fills** the impression from its own campaign book (a 200 response with
//! the creative document) or **resells** it — a 302 redirect to a peer
//! network's serve endpoint with `hop` incremented and the network id
//! appended to `via`. The captured redirect chain *is* the arbitration
//! chain the paper measured (§4.3).

use crate::campaign::Campaign;
use crate::creative::render_creative;
use crate::network::{AdNetwork, NetworkTier};
use malvert_net::{Body, HttpRequest, HttpResponse, OriginServer, ServeCtx};
use malvert_types::{AdNetworkId, CampaignId, DetRng, Url};
use std::sync::Arc;

/// Shared, immutable view of the ad economy used by every serve endpoint.
#[derive(Debug)]
pub struct MarketDirectory {
    /// All networks.
    pub networks: Vec<AdNetwork>,
    /// All campaigns.
    pub campaigns: Vec<Campaign>,
    /// Per-network accepted campaigns (the "book").
    pub books: Vec<Vec<CampaignId>>,
    /// Networks barred from buying arbitration resales — §5.1's proposed
    /// penalty for networks caught delivering malvertisements. Empty by
    /// default.
    pub arbitration_banned: std::collections::BTreeSet<AdNetworkId>,
    /// When set, the arbitration ban expires at the start of this study day
    /// ("forbidding from participating in ad arbitrations for a certain
    /// amount of time"); `None` means a permanent ban.
    pub ban_expires_day: Option<u32>,
}

impl MarketDirectory {
    /// The serve URL for a slot at a given network.
    pub fn serve_url(&self, network: AdNetworkId, pub_id: u32, slot: usize) -> Url {
        Url::from_parts(
            malvert_types::url::Scheme::Http,
            self.networks[network.index()].domain.as_str(),
            "/serve",
        )
        .with_query(&format!("pub={pub_id}&slot={slot}"))
    }
}

/// The serve endpoint of one network.
pub struct ServeEndpoint {
    network_id: AdNetworkId,
    market: Arc<MarketDirectory>,
}

impl ServeEndpoint {
    /// Creates the endpoint for `network_id`.
    pub fn new(network_id: AdNetworkId, market: Arc<MarketDirectory>) -> Self {
        ServeEndpoint { network_id, market }
    }

    fn network(&self) -> &AdNetwork {
        &self.market.networks[self.network_id.index()]
    }

    /// Picks the resale peer for the next auction. Early hops include every
    /// tier; as the chain grows, reputable networks drop out and the
    /// remaining bidders are increasingly the shady tail — the §4.3
    /// observation that "the last auctions typically happen only among those
    /// ad networks that we found to serve malvertisements".
    fn pick_peer(&self, hop: u32, day: u32, rng: &mut DetRng) -> AdNetworkId {
        let networks = &self.market.networks;
        let ban_active = self
            .market
            .ban_expires_day
            .map(|expiry| day < expiry)
            .unwrap_or(true);
        let weights: Vec<f64> = networks
            .iter()
            .map(|n| {
                // Penalized networks cannot buy resold impressions (§5.1)
                // while the ban is in force.
                if ban_active && self.market.arbitration_banned.contains(&n.id) {
                    return 0.0;
                }
                // A network bids on a resale only while its own resale
                // horizon allows further participation.
                let horizon_ok = f64::from(hop) < n.resale_horizon;
                if !horizon_ok {
                    return 0.0;
                }
                let tier_weight = match n.tier {
                    NetworkTier::Major => 8.0 / (1.0 + f64::from(hop)),
                    NetworkTier::Mid => 4.0 / (1.0 + f64::from(hop) * 0.5),
                    NetworkTier::Shady => 1.0 + f64::from(hop) * 0.8,
                };
                // Repeat participation is possible but slightly discouraged.
                if n.id == self.network_id {
                    tier_weight * 0.5
                } else {
                    tier_weight
                }
            })
            .collect();
        match rng.pick_weighted(&weights) {
            Some(idx) => AdNetworkId(idx as u32),
            // Everyone dropped out: the handler must fill.
            None => self.network_id,
        }
    }

    /// Picks a campaign from this network's book, bid-weighted, among the
    /// campaigns active on the request day.
    ///
    /// Malicious demand concentrates on *late-auction* inventory: premium
    /// direct fills go to reputable brand campaigns, while impressions that
    /// survived many resale hops sell at collapsed prices that malicious
    /// advertisers (who monetize per infection, not per conversion) happily
    /// pay. The weight multiplier grows with the hop count — the mechanism
    /// behind Figure 5's long malicious chains.
    fn pick_campaign(&self, day: u32, hop: u32, rng: &mut DetRng) -> Option<&Campaign> {
        let book = &self.market.books[self.network_id.index()];
        let candidates: Vec<&Campaign> = book
            .iter()
            .map(|id| &self.market.campaigns[id.index()])
            .filter(|c| c.active_on(day))
            .collect();
        let weights: Vec<f64> = candidates
            .iter()
            .map(|c| {
                if c.is_malicious() {
                    c.bid * (1.0 + 0.15 * f64::from(hop) * f64::from(hop))
                } else {
                    c.bid
                }
            })
            .collect();
        rng.pick_weighted(&weights).map(|i| candidates[i])
    }
}

/// Parses the `via` chain parameter (`"3.17.5"`).
pub fn parse_via(via: &str) -> Vec<AdNetworkId> {
    via.split('.')
        .filter_map(|s| s.parse::<u32>().ok().map(AdNetworkId))
        .collect()
}

impl OriginServer for ServeEndpoint {
    fn handle(&self, req: &HttpRequest, ctx: &mut ServeCtx) -> HttpResponse {
        match req.url.path() {
            "/serve" => {}
            // Creative support assets (images referenced by creatives that
            // happen to live on network domains) — plain 200s.
            p if p.starts_with("/img/") => {
                return HttpResponse::ok(Body::Image(bytes::Bytes::from_static(&[0x89, b'P'])));
            }
            _ => return HttpResponse::not_found(),
        }
        let pub_id = req.url.query_param("pub").unwrap_or("0").to_string();
        let slot = req.url.query_param("slot").unwrap_or("0").to_string();
        let hop: u32 = req
            .url
            .query_param("hop")
            .and_then(|h| h.parse().ok())
            .unwrap_or(0);
        let via = req.url.query_param("via").unwrap_or("").to_string();

        let network = self.network();
        let must_fill = hop >= 40; // hard stop well past any realistic chain
        let resell = !must_fill && ctx.rng.chance(network.resale_probability(hop));

        if resell {
            let peer = self.pick_peer(hop + 1, ctx.time.day, &mut ctx.rng);
            if peer != self.network_id || hop < 40 {
                let peer_domain = &self.market.networks[peer.index()].domain;
                let new_via = if via.is_empty() {
                    format!("{}", self.network_id.0)
                } else {
                    format!("{via}.{}", self.network_id.0)
                };
                let target = Url::from_parts(
                    malvert_types::url::Scheme::Http,
                    peer_domain.as_str(),
                    "/serve",
                )
                .with_query(&format!(
                    "pub={pub_id}&slot={slot}&hop={}&via={new_via}",
                    hop + 1
                ));
                return HttpResponse::redirect(target);
            }
        }

        // Fill: serve a creative document.
        match self.pick_campaign(ctx.time.day, hop, &mut ctx.rng) {
            Some(campaign) => {
                let variant = ctx.rng.below(campaign.variant_count.max(1) as usize) as u32;
                HttpResponse::ok(Body::Html(render_creative(campaign, variant)))
            }
            // Empty book: a house ad.
            None => HttpResponse::ok(Body::Html(format!(
                "<html><body style=\"margin:0\"><div class=\"house-ad\">Advertise with {} \
                 </div></body></html>",
                network.name
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{acceptance_matrix, generate_campaigns, CampaignConfig};
    use malvert_net::{Network, TrafficCapture};
    use malvert_types::rng::SeedTree;
    use malvert_types::SimTime;

    fn market(seed: u64) -> Arc<MarketDirectory> {
        let tree = SeedTree::new(seed);
        let networks = AdNetwork::generate_all(tree, 40);
        let campaigns = generate_campaigns(tree, &CampaignConfig::default());
        let books = acceptance_matrix(tree, &campaigns, &networks);
        Arc::new(MarketDirectory {
            networks,
            campaigns,
            books,
            arbitration_banned: Default::default(),
            ban_expires_day: None,
        })
    }

    fn wired_network(market: &Arc<MarketDirectory>, seed: u64) -> Network {
        let mut net = Network::new(SeedTree::new(seed));
        for n in &market.networks {
            net.register(
                n.domain.clone(),
                Arc::new(ServeEndpoint::new(n.id, Arc::clone(market))),
            );
        }
        net
    }

    #[test]
    fn serve_eventually_fills() {
        let market = market(10);
        let net = wired_network(&market, 10);
        let mut cap = TrafficCapture::new();
        let url = market.serve_url(AdNetworkId(0), 5, 0);
        let outcome = net
            .fetch(&HttpRequest::get(url), SimTime::at(3, 1), &mut cap)
            .unwrap();
        assert!(outcome.response.status.is_success());
        let html = outcome.response.body.as_html().expect("creative is HTML");
        assert!(html.contains("<html>") || html.contains("house-ad"));
    }

    #[test]
    fn chains_vary_and_stay_bounded() {
        let market = market(11);
        let net = wired_network(&market, 11);
        let mut lengths = Vec::new();
        for day in 0..30 {
            for slot in 0..4usize {
                let mut cap = TrafficCapture::new();
                let url = market.serve_url(AdNetworkId(0), 1, slot);
                let outcome = net
                    .fetch(&HttpRequest::get(url), SimTime::at(day, 0), &mut cap)
                    .unwrap();
                lengths.push(outcome.hops);
            }
        }
        let max = *lengths.iter().max().unwrap();
        let zeros = lengths.iter().filter(|&&h| h == 0).count();
        assert!(max <= 40, "chain exceeded bound: {max}");
        assert!(max >= 2, "no arbitration happened at all");
        assert!(zeros > 0, "some impressions should fill directly");
    }

    #[test]
    fn via_param_tracks_chain() {
        let market = market(12);
        let net = wired_network(&market, 12);
        // Find a serve that resold at least twice and check via continuity.
        'outer: for day in 0..40 {
            let mut cap = TrafficCapture::new();
            let url = market.serve_url(AdNetworkId(0), 2, 0);
            let _ = net.fetch(&HttpRequest::get(url), SimTime::at(day, 2), &mut cap);
            let chain = cap.redirect_chains();
            if let Some(chain) = chain.first() {
                if chain.len() >= 3 {
                    // The last request's via must list all prior hops' hosts.
                    let last = chain.last().unwrap();
                    let via = last.url.query_param("via").unwrap_or("");
                    let ids = parse_via(via);
                    assert_eq!(ids.len(), chain.len() - 1);
                    for (id, hop) in ids.iter().zip(chain.iter()) {
                        let domain = &market.networks[id.index()].domain;
                        assert_eq!(hop.url.host().unwrap(), domain);
                    }
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn fills_are_deterministic() {
        let market = market(13);
        let net = wired_network(&market, 13);
        let url = market.serve_url(AdNetworkId(3), 9, 1);
        let run = |net: &Network| {
            let mut cap = TrafficCapture::new();
            let outcome = net
                .fetch(&HttpRequest::get(url.clone()), SimTime::at(7, 3), &mut cap)
                .unwrap();
            (outcome.final_url.clone(), outcome.response.body.clone())
        };
        assert_eq!(run(&net), run(&net));
    }

    #[test]
    fn different_refreshes_can_serve_different_ads() {
        let market = market(14);
        let net = wired_network(&market, 14);
        let url = market.serve_url(AdNetworkId(0), 4, 2);
        let mut bodies = std::collections::BTreeSet::new();
        for refresh in 0..5 {
            for day in 0..10 {
                let mut cap = TrafficCapture::new();
                let outcome = net
                    .fetch(
                        &HttpRequest::get(url.clone()),
                        SimTime::at(day, refresh),
                        &mut cap,
                    )
                    .unwrap();
                if let Some(html) = outcome.response.body.as_html() {
                    bodies.insert(html.to_string());
                }
            }
        }
        assert!(
            bodies.len() > 5,
            "ad rotation should produce variety: {} unique",
            bodies.len()
        );
    }

    #[test]
    fn parse_via_roundtrip() {
        assert_eq!(
            parse_via("3.17.5"),
            vec![AdNetworkId(3), AdNetworkId(17), AdNetworkId(5)]
        );
        assert!(parse_via("").is_empty());
        assert_eq!(parse_via("7"), vec![AdNetworkId(7)]);
    }

    #[test]
    fn unknown_path_404s() {
        let market = market(15);
        let endpoint = ServeEndpoint::new(AdNetworkId(0), Arc::clone(&market));
        let req = HttpRequest::get(
            Url::parse(&format!("http://{}/admin", market.networks[0].domain)).unwrap(),
        );
        let mut ctx = ServeCtx::for_request(SeedTree::new(1), SimTime::ZERO, &req);
        assert_eq!(endpoint.handle(&req, &mut ctx).status.0, 404);
    }
}
