//! The assembled ad economy and its wiring into the simulated network.

use crate::campaign::{
    acceptance_matrix, generate_campaigns, Campaign, CampaignBehavior, CampaignConfig, CloakStyle,
};
use crate::creative::{cloak_nx_domain, CLOAK_BENIGN_TARGETS};
use crate::hosts::{BenignSearchServer, ExploitServer, LandingServer, PayloadServer, ScamServer};
use crate::network::AdNetwork;
use crate::serve::{MarketDirectory, ServeEndpoint};
use malvert_net::Network;
use malvert_types::rng::SeedTree;
use malvert_types::{AdNetworkId, CampaignId, DomainName, Url};
use std::sync::Arc;

/// Configuration of the ad economy.
#[derive(Debug, Clone)]
pub struct AdWorldConfig {
    /// Number of ad networks.
    pub network_count: u32,
    /// Campaign population.
    pub campaigns: CampaignConfig,
}

impl Default for AdWorldConfig {
    fn default() -> Self {
        AdWorldConfig {
            network_count: 40,
            campaigns: CampaignConfig::default(),
        }
    }
}

/// The generated ad economy.
#[derive(Debug)]
pub struct AdWorld {
    /// Shared market directory (networks, campaigns, books).
    pub market: Arc<MarketDirectory>,
}

impl AdWorld {
    /// Generates the economy deterministically.
    pub fn generate(tree: SeedTree, config: &AdWorldConfig) -> AdWorld {
        let networks = AdNetwork::generate_all(tree, config.network_count);
        let campaigns = generate_campaigns(tree, &config.campaigns);
        let books = acceptance_matrix(tree, &campaigns, &networks);
        AdWorld {
            market: Arc::new(MarketDirectory {
                networks,
                campaigns,
                books,
                arbitration_banned: Default::default(),
                ban_expires_day: None,
            }),
        }
    }

    /// All networks.
    pub fn networks(&self) -> &[AdNetwork] {
        &self.market.networks
    }

    /// All campaigns.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.market.campaigns
    }

    /// The serve-endpoint domains, indexed by [`AdNetworkId`].
    pub fn network_domains(&self) -> Vec<DomainName> {
        self.market
            .networks
            .iter()
            .map(|n| n.domain.clone())
            .collect()
    }

    /// The serve URL for a publisher slot at its contracted network.
    pub fn serve_url(&self, network: AdNetworkId, pub_id: u32, slot: usize) -> Url {
        self.market.serve_url(network, pub_id, slot)
    }

    /// Ground truth: every malicious campaign with the domains it controls
    /// and its activation day — the input to blacklist-truth registration
    /// and to the study's precision/recall accounting.
    pub fn malicious_ground_truth(&self) -> Vec<(CampaignId, Vec<DomainName>, u32)> {
        self.market
            .campaigns
            .iter()
            .filter(|c| c.is_malicious())
            .map(|c| {
                (
                    c.id,
                    c.controlled_domains().into_iter().cloned().collect(),
                    c.active_from,
                )
            })
            .collect()
    }

    /// Registers every ad-economy origin server on `net`:
    /// serve endpoints, advertiser landing pages, exploit gates, payload
    /// hosts, scam destinations, benign cloak targets, and the NX cloak
    /// sinkholes.
    pub fn register_servers(&self, net: &mut Network) {
        for network in &self.market.networks {
            net.register(
                network.domain.clone(),
                Arc::new(ServeEndpoint::new(network.id, Arc::clone(&self.market))),
            );
        }
        for campaign in &self.market.campaigns {
            match &campaign.behavior {
                CampaignBehavior::Benign { landing } => {
                    net.register(
                        landing.clone(),
                        Arc::new(LandingServer::new(&campaign.advertiser)),
                    );
                }
                CampaignBehavior::DriveBy {
                    exploit_host,
                    cloak,
                    ..
                } => {
                    net.register(
                        exploit_host.clone(),
                        Arc::new(ExploitServer::new(campaign).expect("driveby campaign")),
                    );
                    if *cloak == CloakStyle::NxDomain {
                        let nx = DomainName::parse(&cloak_nx_domain(campaign))
                            .expect("nx domain valid");
                        net.register_nx(nx);
                    }
                }
                CampaignBehavior::Deceptive { payload_host, .. } => {
                    net.register(
                        payload_host.clone(),
                        Arc::new(PayloadServer::new(campaign).expect("deceptive campaign")),
                    );
                }
                CampaignBehavior::Hijack { destination } => {
                    net.register(destination.clone(), Arc::new(ScamServer));
                }
            }
        }
        for target in CLOAK_BENIGN_TARGETS {
            net.register(
                DomainName::parse(target).expect("static domain"),
                Arc::new(BenignSearchServer),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_net::{HttpRequest, TrafficCapture};
    use malvert_types::SimTime;

    fn world() -> AdWorld {
        AdWorld::generate(SeedTree::new(40), &AdWorldConfig::default())
    }

    #[test]
    fn generation_consistency() {
        let w = world();
        assert_eq!(w.networks().len(), 40);
        assert_eq!(
            w.campaigns().len() as u32,
            AdWorldConfig::default().campaigns.total()
        );
        assert_eq!(w.network_domains().len(), 40);
    }

    #[test]
    fn register_servers_wires_everything() {
        let w = world();
        let mut net = Network::new(SeedTree::new(40));
        w.register_servers(&mut net);
        // Every network domain resolves.
        for d in w.network_domains() {
            assert!(net.resolves(&d), "{d} not registered");
        }
        // Every campaign-controlled domain resolves.
        for c in w.campaigns() {
            for d in c.controlled_domains() {
                assert!(net.resolves(d), "{d} not registered");
            }
        }
    }

    #[test]
    fn end_to_end_serve_through_network() {
        let w = world();
        let mut net = Network::new(SeedTree::new(40));
        w.register_servers(&mut net);
        let mut cap = TrafficCapture::new();
        let url = w.serve_url(AdNetworkId(0), 7, 0);
        let outcome = net
            .fetch(&HttpRequest::get(url), SimTime::at(10, 2), &mut cap)
            .unwrap();
        assert!(outcome.response.status.is_success());
        assert!(outcome.response.body.as_html().is_some());
    }

    #[test]
    fn ground_truth_covers_all_malicious() {
        let w = world();
        let truth = w.malicious_ground_truth();
        let malicious_count = w.campaigns().iter().filter(|c| c.is_malicious()).count();
        assert_eq!(truth.len(), malicious_count);
        for (_, domains, _) in &truth {
            assert!(!domains.is_empty());
        }
    }

    #[test]
    fn nx_cloak_domains_do_not_resolve() {
        let w = world();
        let mut net = Network::new(SeedTree::new(40));
        w.register_servers(&mut net);
        for c in w.campaigns() {
            if let CampaignBehavior::DriveBy {
                cloak: CloakStyle::NxDomain,
                ..
            } = &c.behavior
            {
                let nx = DomainName::parse(&cloak_nx_domain(c)).unwrap();
                assert!(!net.resolves(&nx), "{nx} must not resolve");
            }
        }
    }

    #[test]
    fn cloak_benign_targets_resolve() {
        let w = world();
        let mut net = Network::new(SeedTree::new(40));
        w.register_servers(&mut net);
        for t in CLOAK_BENIGN_TARGETS {
            assert!(net.resolves(&DomainName::parse(t).unwrap()));
        }
    }
}
