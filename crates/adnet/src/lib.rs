//! # malvert-adnet
//!
//! The simulated advertising economy: advertisers, campaigns, ad networks
//! (exchanges), arbitration auctions, and the creatives they serve.
//!
//! This is the system under measurement. The paper's core findings are all
//! statements about this ecosystem:
//!
//! * **Figure 1** — some ad networks serve a far higher ratio of malicious
//!   advertisements than others, because their submission filtering is weak.
//!   Here, every network has a `filter_strength`; a malicious campaign gets
//!   into a network's book only when that filter misses it at submission
//!   time.
//! * **Figure 2** — most such networks are small, but one mid-sized network
//!   (~3% of total ad volume) leaks significant malvertising. The generator
//!   designates exactly such a "hotspot" network.
//! * **Figure 5 / §4.3** — *ad arbitration*: a network that cannot fill a
//!   slot profitably resells the impression to a peer network, observable as
//!   an extra HTTP redirect hop. Late auctions happen between increasingly
//!   disreputable networks, which is where malvertising concentrates; chains
//!   reach ~15 hops for benign and ~30 for malicious fills, and the same
//!   network may appear several times in one chain.
//!
//! The creatives themselves are real programs (see [`creative`]): the
//! drive-by creative probes plugins and assembles an exploit URL; the
//! deceptive creative rewrites the document into a fake video player; the
//! hijack creative assigns `top.location`. The oracle has to execute them to
//! find out — exactly like Wepawet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod creative;
pub mod hosts;
pub mod network;
pub mod serve;
pub mod world;

pub use campaign::{Campaign, CampaignBehavior, LureKind};
pub use network::{AdNetwork, NetworkTier};
pub use world::{AdWorld, AdWorldConfig};
