//! Advertiser campaigns and the submission/acceptance process.

use crate::network::AdNetwork;
use malvert_types::rng::SeedTree;
use malvert_types::{CampaignId, DomainName};

/// The lure a deceptive-download creative uses (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LureKind {
    /// "Your Flash Player is out of date."
    FakeFlashUpdate,
    /// "Install this codec / media player to view the content."
    FakeMediaPlayer,
    /// "Your computer is infected — download this cleaner."
    FakeAntivirus,
}

impl LureKind {
    /// All lure kinds.
    pub const ALL: [LureKind; 3] = [
        LureKind::FakeFlashUpdate,
        LureKind::FakeMediaPlayer,
        LureKind::FakeAntivirus,
    ];
}

/// What a campaign's creative actually does (§2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignBehavior {
    /// A legitimate product advertisement: image + click-through link.
    Benign {
        /// Advertiser landing-page domain.
        landing: DomainName,
    },
    /// A drive-by download (§2.1): probes browser plugins, and when a
    /// vulnerable one is found loads the exploit, which drops a payload.
    DriveBy {
        /// Exploit-kit landing host.
        exploit_host: DomainName,
        /// Malware family id of the dropped payload.
        family: u32,
        /// Cloaking: when the environment looks like an analysis system, the
        /// creative bails out to this destination instead.
        cloak: CloakStyle,
    },
    /// A deceptive download (§2.2): social-engineers the user into
    /// installing malware voluntarily.
    Deceptive {
        /// The lure shown.
        lure: LureKind,
        /// Payload host.
        payload_host: DomainName,
        /// Malware family id of the payload.
        family: u32,
    },
    /// Link hijacking (§2.3): sets `top.location`, dragging the whole page
    /// to a scam destination.
    Hijack {
        /// Destination the page is dragged to.
        destination: DomainName,
    },
}

/// How a cloaked creative behaves when it detects analysis (§4.1 lists both
/// observed variants: redirects to NX domains and to benign sites like
/// Google or Bing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloakStyle {
    /// No cloaking.
    None,
    /// Redirect to a domain that does not resolve.
    NxDomain,
    /// Redirect to a well-known benign site.
    BenignSite,
}

/// One advertiser campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Dense id.
    pub id: CampaignId,
    /// Display name of the (possibly fake) advertiser.
    pub advertiser: String,
    /// Behaviour of the creative.
    pub behavior: CampaignBehavior,
    /// Auction bid weight: how strongly this campaign competes for slots.
    /// Malicious campaigns overbid — infections out-earn honest margins.
    pub bid: f64,
    /// First study day the campaign runs.
    pub active_from: u32,
    /// Number of creative variants (distinct markup per variant).
    pub variant_count: u32,
    /// Obfuscation layers applied to malicious script creatives (0–2).
    pub obfuscation_layers: u8,
    /// Drive-by only: the kit leads with a malicious Flash stage before the
    /// executable drop (a minority pattern; feeds Table 1's Flash row).
    pub uses_flash_exploit: bool,
    /// Seed for creative generation.
    pub seed: u64,
}

impl Campaign {
    /// Is this a malicious campaign?
    pub fn is_malicious(&self) -> bool {
        !matches!(self.behavior, CampaignBehavior::Benign { .. })
    }

    /// Domains this campaign controls (for blacklist ground truth).
    pub fn controlled_domains(&self) -> Vec<&DomainName> {
        match &self.behavior {
            CampaignBehavior::Benign { landing } => vec![landing],
            CampaignBehavior::DriveBy { exploit_host, .. } => vec![exploit_host],
            CampaignBehavior::Deceptive { payload_host, .. } => vec![payload_host],
            CampaignBehavior::Hijack { destination } => vec![destination],
        }
    }

    /// Active on `day`?
    pub fn active_on(&self, day: u32) -> bool {
        day >= self.active_from
    }
}

/// Configuration of the campaign population.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of benign campaigns.
    pub benign_count: u32,
    /// Number of drive-by campaigns.
    pub driveby_count: u32,
    /// Number of deceptive-download campaigns.
    pub deceptive_count: u32,
    /// Number of link-hijack campaigns.
    pub hijack_count: u32,
    /// Study length in days (campaign start days spread over the window).
    pub study_days: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            benign_count: 520,
            driveby_count: 16,
            deceptive_count: 10,
            hijack_count: 7,
            study_days: 90,
        }
    }
}

impl CampaignConfig {
    /// Total campaigns.
    pub fn total(&self) -> u32 {
        self.benign_count + self.driveby_count + self.deceptive_count + self.hijack_count
    }
}

/// Generates the campaign population.
pub fn generate_campaigns(tree: SeedTree, config: &CampaignConfig) -> Vec<Campaign> {
    let tree = tree.branch("campaigns");
    let mut out = Vec::with_capacity(config.total() as usize);
    let mut next = 0u32;

    let mut push = |behavior_gen: &mut dyn FnMut(SeedTree, &mut malvert_types::DetRng) -> CampaignBehavior,
                    count: u32,
                    malicious: bool,
                    out: &mut Vec<Campaign>| {
        for _ in 0..count {
            let id = CampaignId(next);
            next += 1;
            let branch = tree.branch("campaign").branch_idx(u64::from(id.0));
            let mut rng = branch.rng();
            let behavior = behavior_gen(branch, &mut rng);
            let bid = if malicious {
                // Crooks overbid: 2-5x the honest range.
                2.0 + 3.0 * rng.unit_f64()
            } else {
                0.5 + 1.0 * rng.unit_f64()
            };
            // Benign campaigns mostly run the whole window; malicious ones
            // pop up throughout the study (which exercises blacklist lag).
            let active_from = if malicious {
                rng.below((config.study_days as usize * 3 / 4).max(1)) as u32
            } else if rng.chance(0.8) {
                0
            } else {
                rng.below((config.study_days as usize / 2).max(1)) as u32
            };
            let variant_count = if malicious {
                rng.range_inclusive(1, 4) as u32
            } else {
                rng.range_inclusive(1, 14) as u32
            };
            let obfuscation_layers = if malicious {
                rng.range_inclusive(0, 2) as u8
            } else {
                0
            };
            let uses_flash_exploit =
                matches!(behavior, CampaignBehavior::DriveBy { .. }) && rng.chance(0.3);
            out.push(Campaign {
                id,
                advertiser: format!(
                    "{}-{}",
                    if malicious { "shade" } else { "brand" },
                    id.0
                ),
                behavior,
                bid,
                active_from,
                variant_count,
                obfuscation_layers,
                uses_flash_exploit,
                seed: branch.seed(),
            });
        }
    };

    push(
        &mut |branch, _rng| CampaignBehavior::Benign {
            landing: domain_for(branch, "landing"),
        },
        config.benign_count,
        false,
        &mut out,
    );
    push(
        &mut |branch, rng| CampaignBehavior::DriveBy {
            exploit_host: domain_for(branch, "exploit"),
            family: rng.below(malvert_scanner_family_universe()) as u32,
            cloak: match rng.below(10) {
                0..=5 => CloakStyle::None,
                6 | 7 => CloakStyle::NxDomain,
                _ => CloakStyle::BenignSite,
            },
        },
        config.driveby_count,
        true,
        &mut out,
    );
    push(
        &mut |branch, rng| CampaignBehavior::Deceptive {
            lure: LureKind::ALL[rng.below(LureKind::ALL.len())],
            payload_host: domain_for(branch, "payload"),
            family: rng.below(malvert_scanner_family_universe()) as u32,
        },
        config.deceptive_count,
        true,
        &mut out,
    );
    push(
        &mut |branch, _rng| CampaignBehavior::Hijack {
            destination: domain_for(branch, "scam"),
        },
        config.hijack_count,
        true,
        &mut out,
    );
    out
}

/// Family-universe size — kept in sync with `malvert_scanner::report::FAMILY_UNIVERSE`
/// (checked by an integration test; adnet avoids depending on the scanner).
fn malvert_scanner_family_universe() -> usize {
    64
}

fn domain_for(branch: SeedTree, role: &str) -> DomainName {
    let mut rng = branch.branch(role).rng();
    let stems = [
        "cdn", "media", "content", "assets", "static", "delivery", "promo", "offer", "deal",
        "click", "track", "gateway", "portal", "zone",
    ];
    let stem = stems[rng.below(stems.len())];
    let tlds = ["com", "net", "biz", "info", "org"];
    let tld = tlds[rng.below(tlds.len())];
    let n = rng.below(100_000);
    DomainName::parse(&format!("{role}-{stem}{n}.{tld}")).expect("generated domain valid")
}

/// Builds the acceptance matrix: which networks carry which campaigns.
///
/// Benign campaigns are welcome almost everywhere. A malicious campaign is
/// *submitted* everywhere (attackers spray) but enters a book only when the
/// network's filter misses it — the mechanism behind Figure 1.
pub fn acceptance_matrix(
    tree: SeedTree,
    campaigns: &[Campaign],
    networks: &[AdNetwork],
) -> Vec<Vec<CampaignId>> {
    let tree = tree.branch("acceptance");
    let mut books: Vec<Vec<CampaignId>> = vec![Vec::new(); networks.len()];
    for campaign in campaigns {
        let mut rng = tree.branch_idx(u64::from(campaign.id.0)).rng();
        for network in networks {
            let accepted = if campaign.is_malicious() {
                !rng.chance(network.filter_strength)
            } else {
                // Benign campaigns follow brand safety: reputable exchanges
                // get nearly all legitimate demand, shady networks very
                // little — which is why the worst networks' traffic is so
                // disproportionately malicious (Figure 1).
                let adoption = match network.tier {
                    crate::network::NetworkTier::Major => 0.92,
                    crate::network::NetworkTier::Mid => 0.55,
                    crate::network::NetworkTier::Shady => 0.18,
                };
                rng.chance(adoption)
            };
            if accepted {
                books[network.id.index()].push(campaign.id);
            }
        }
    }
    books
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{AdNetwork, NetworkTier};

    fn setup() -> (Vec<Campaign>, Vec<AdNetwork>, Vec<Vec<CampaignId>>) {
        let tree = SeedTree::new(3);
        let campaigns = generate_campaigns(tree, &CampaignConfig::default());
        let networks = AdNetwork::generate_all(tree, 40);
        let books = acceptance_matrix(tree, &campaigns, &networks);
        (campaigns, networks, books)
    }

    #[test]
    fn population_counts() {
        let (campaigns, ..) = setup();
        let config = CampaignConfig::default();
        assert_eq!(campaigns.len() as u32, config.total());
        let malicious = campaigns.iter().filter(|c| c.is_malicious()).count() as u32;
        assert_eq!(
            malicious,
            config.driveby_count + config.deceptive_count + config.hijack_count
        );
    }

    #[test]
    fn malicious_campaigns_overbid() {
        let (campaigns, ..) = setup();
        let avg = |malicious: bool| {
            let v: Vec<f64> = campaigns
                .iter()
                .filter(|c| c.is_malicious() == malicious)
                .map(|c| c.bid)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(true) > avg(false) * 1.5);
    }

    #[test]
    fn books_reflect_filter_strength() {
        let (campaigns, networks, books) = setup();
        let malicious_share = |net: &AdNetwork| {
            let book = &books[net.id.index()];
            if book.is_empty() {
                return 0.0;
            }
            let mal = book
                .iter()
                .filter(|id| campaigns[id.index()].is_malicious())
                .count();
            mal as f64 / book.len() as f64
        };
        let major_avg: f64 = networks
            .iter()
            .filter(|n| n.tier == NetworkTier::Major)
            .map(malicious_share)
            .sum::<f64>()
            / networks.iter().filter(|n| n.tier == NetworkTier::Major).count() as f64;
        let shady_avg: f64 = networks
            .iter()
            .filter(|n| n.tier == NetworkTier::Shady)
            .map(malicious_share)
            .sum::<f64>()
            / networks.iter().filter(|n| n.tier == NetworkTier::Shady).count() as f64;
        assert!(
            shady_avg > major_avg * 3.0,
            "shady {shady_avg:.4} vs major {major_avg:.4}"
        );
    }

    #[test]
    fn hotspot_carries_malicious_campaigns() {
        let (campaigns, networks, books) = setup();
        let hotspot = networks.iter().find(|n| n.is_hotspot).unwrap();
        let mal = books[hotspot.id.index()]
            .iter()
            .filter(|id| campaigns[id.index()].is_malicious())
            .count();
        assert!(mal >= 10, "hotspot carries only {mal} malicious campaigns");
    }

    #[test]
    fn benign_demand_follows_brand_safety() {
        let (campaigns, networks, books) = setup();
        let benign_total = campaigns.iter().filter(|c| !c.is_malicious()).count();
        let benign_share = |net: &AdNetwork| {
            books[net.id.index()]
                .iter()
                .filter(|id| !campaigns[id.index()].is_malicious())
                .count() as f64
                / benign_total as f64
        };
        for net in &networks {
            let share = benign_share(net);
            match net.tier {
                NetworkTier::Major => assert!(share > 0.8, "{} {share:.2}", net.name),
                NetworkTier::Mid => assert!((0.3..0.8).contains(&share), "{} {share:.2}", net.name),
                NetworkTier::Shady => assert!(share < 0.35, "{} {share:.2}", net.name),
            }
        }
    }

    #[test]
    fn controlled_domains_nonempty_and_valid() {
        let (campaigns, ..) = setup();
        for c in &campaigns {
            assert!(!c.controlled_domains().is_empty());
        }
    }

    #[test]
    fn activity_windows() {
        let (campaigns, ..) = setup();
        for c in &campaigns {
            assert!(c.active_from < 90);
            assert!(c.active_on(89));
            if c.active_from > 0 {
                assert!(!c.active_on(c.active_from - 1));
            }
        }
        // Most benign campaigns run from day 0.
        let benign_day0 = campaigns
            .iter()
            .filter(|c| !c.is_malicious() && c.active_from == 0)
            .count();
        let benign_total = campaigns.iter().filter(|c| !c.is_malicious()).count();
        assert!(benign_day0 as f64 / benign_total as f64 > 0.6);
    }

    #[test]
    fn determinism() {
        let a = generate_campaigns(SeedTree::new(5), &CampaignConfig::default());
        let b = generate_campaigns(SeedTree::new(5), &CampaignConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.behavior, y.behavior);
            assert_eq!(x.seed, y.seed);
        }
    }
}
