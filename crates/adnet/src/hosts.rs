//! Campaign-side origin servers: advertiser landing pages, exploit-kit
//! gates, and payload hosts.

use crate::campaign::{Campaign, CampaignBehavior};
use malvert_net::{Body, HttpRequest, HttpResponse, OriginServer, ServeCtx};
use malvert_scanner::{MalwareFamily, Payload, PayloadKind};
use malvert_types::rng::SeedTree;

/// Landing-page server for a benign advertiser.
pub struct LandingServer {
    advertiser: String,
}

impl LandingServer {
    /// Creates a landing server for an advertiser name.
    pub fn new(advertiser: &str) -> Self {
        LandingServer {
            advertiser: advertiser.to_string(),
        }
    }
}

impl OriginServer for LandingServer {
    fn handle(&self, req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        let path = req.url.path();
        if path.starts_with("/img/") {
            return HttpResponse::ok(Body::Image(bytes::Bytes::from_static(&[
                0x89, b'P', b'N', b'G',
            ])));
        }
        if path == "/beacon" {
            return HttpResponse::ok(Body::Empty);
        }
        HttpResponse::ok(Body::Html(format!(
            "<html><head><title>{0}</title></head><body><h1>{0}</h1>\
             <p>Welcome to our store.</p></body></html>",
            self.advertiser
        )))
    }
}

/// Exploit-kit gate for a drive-by campaign: `/gate` serves the exploit
/// landing (which immediately drops the payload — the browser records the
/// download), `/load` serves the payload bytes directly.
pub struct ExploitServer {
    campaign_seed: u64,
    family: u32,
}

impl ExploitServer {
    /// Creates the exploit host for a drive-by campaign.
    pub fn new(campaign: &Campaign) -> Option<Self> {
        match &campaign.behavior {
            CampaignBehavior::DriveBy { family, .. } => Some(ExploitServer {
                campaign_seed: campaign.seed,
                family: *family,
            }),
            _ => None,
        }
    }

    fn payload(&self) -> Payload {
        // Exploit-kit drops are packed executables.
        Payload::malicious(
            PayloadKind::Executable,
            MalwareFamily(self.family),
            true,
            SeedTree::new(self.campaign_seed).branch("payload"),
        )
    }
}

impl OriginServer for ExploitServer {
    fn handle(&self, req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        let path = req.url.path();
        if path.starts_with("/img/") {
            return HttpResponse::ok(Body::Image(bytes::Bytes::from_static(&[0x89, b'P'])));
        }
        if path == "/gate" {
            // The exploit landing: minimal markup plus a script that pulls
            // the payload (the "exploit" — in a real kit this is shellcode;
            // here the observable effect is the forced download).
            return HttpResponse::ok(Body::Html(format!(
                "<html><body><script>window.location = 'http://{}/load?x=1';</script>\
                 </body></html>",
                req.url.host().map(|h| h.to_string()).unwrap_or_default()
            )));
        }
        if path == "/load" {
            return HttpResponse::ok(Body::Download(self.payload().bytes))
                .as_attachment("update.exe");
        }
        if path == "/flash" {
            let swf = Payload::malicious(
                PayloadKind::Flash,
                MalwareFamily(self.family),
                true,
                SeedTree::new(self.campaign_seed).branch("flash-stage"),
            );
            return HttpResponse::ok(Body::Download(swf.bytes)).as_attachment("stage.swf");
        }
        HttpResponse::not_found()
    }
}

/// Payload host for a deceptive-download campaign: `/get/<name>` serves the
/// malware disguised under the lure's filename.
pub struct PayloadServer {
    campaign_seed: u64,
    family: u32,
}

impl PayloadServer {
    /// Creates the payload host for a deceptive campaign.
    pub fn new(campaign: &Campaign) -> Option<Self> {
        match &campaign.behavior {
            CampaignBehavior::Deceptive { family, .. } => Some(PayloadServer {
                campaign_seed: campaign.seed,
                family: *family,
            }),
            _ => None,
        }
    }
}

impl OriginServer for PayloadServer {
    fn handle(&self, req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        let path = req.url.path();
        if let Some(name) = path.strip_prefix("/get/") {
            // Deceptive installers are typically unpacked (they must look
            // legitimate enough to run) — signature detection, not
            // heuristics, catches them.
            let payload = Payload::malicious(
                PayloadKind::Executable,
                MalwareFamily(self.family),
                false,
                SeedTree::new(self.campaign_seed).branch("payload"),
            );
            return HttpResponse::ok(Body::Download(payload.bytes)).as_attachment(name);
        }
        HttpResponse::not_found()
    }
}

/// Scam destination for link-hijack campaigns.
pub struct ScamServer;

impl OriginServer for ScamServer {
    fn handle(&self, req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        if req.url.path().starts_with("/img/") {
            return HttpResponse::ok(Body::Image(bytes::Bytes::from_static(&[0x89, b'P'])));
        }
        HttpResponse::ok(Body::Html(
            "<html><body><h1>Congratulations! You won!</h1>\
             <form action=\"/claim\"><input name=\"card\"></form></body></html>"
                .to_string(),
        ))
    }
}

/// The well-known benign sites cloaking creatives bounce to.
pub struct BenignSearchServer;

impl OriginServer for BenignSearchServer {
    fn handle(&self, _req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        HttpResponse::ok(Body::Html(
            "<html><body><input type=\"text\" name=\"q\"></body></html>".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_scanner::ScanService;
    use malvert_types::{CampaignId, DomainName, SimTime, Url};

    fn driveby() -> Campaign {
        Campaign {
            id: CampaignId(0),
            advertiser: "shade-0".into(),
            behavior: CampaignBehavior::DriveBy {
                exploit_host: DomainName::parse("exploit-x.biz").unwrap(),
                family: 2,
                cloak: crate::campaign::CloakStyle::None,
            },
            bid: 3.0,
            active_from: 0,
            variant_count: 1,
            obfuscation_layers: 0,
            uses_flash_exploit: false,
            seed: 123,
        }
    }

    fn ctx(req: &HttpRequest) -> ServeCtx {
        ServeCtx::for_request(SeedTree::new(1), SimTime::ZERO, req)
    }

    #[test]
    fn exploit_gate_then_load() {
        let server = ExploitServer::new(&driveby()).unwrap();
        let gate = HttpRequest::get(Url::parse("http://exploit-x.biz/gate?e=0").unwrap());
        let resp = server.handle(&gate, &mut ctx(&gate));
        assert!(resp.body.as_html().unwrap().contains("/load"));

        let load = HttpRequest::get(Url::parse("http://exploit-x.biz/load?x=1").unwrap());
        let resp = server.handle(&load, &mut ctx(&load));
        assert!(resp.attachment_filename.is_some());
        let bytes = resp.body.as_download().unwrap();
        assert_eq!(&bytes[..2], b"MZ");
    }

    #[test]
    fn exploit_payload_detected_by_scanner() {
        let server = ExploitServer::new(&driveby()).unwrap();
        let load = HttpRequest::get(Url::parse("http://exploit-x.biz/load").unwrap());
        let resp = server.handle(&load, &mut ctx(&load));
        let svc = ScanService::new(SeedTree::new(9));
        assert!(svc.is_malicious(resp.body.as_download().unwrap()));
    }

    #[test]
    fn payload_server_serves_named_installer() {
        let campaign = Campaign {
            id: CampaignId(1),
            advertiser: "shade-1".into(),
            behavior: CampaignBehavior::Deceptive {
                lure: crate::campaign::LureKind::FakeFlashUpdate,
                payload_host: DomainName::parse("payload-y.net").unwrap(),
                family: 5,
            },
            bid: 3.0,
            active_from: 0,
            variant_count: 1,
            obfuscation_layers: 0,
            uses_flash_exploit: false,
            seed: 321,
        };
        let server = PayloadServer::new(&campaign).unwrap();
        let req = HttpRequest::get(
            Url::parse("http://payload-y.net/get/flash_update.exe?c=1").unwrap(),
        );
        let resp = server.handle(&req, &mut ctx(&req));
        assert_eq!(resp.attachment_filename.as_deref(), Some("flash_update.exe"));
        let svc = ScanService::new(SeedTree::new(9));
        assert!(svc.is_malicious(resp.body.as_download().unwrap()));
    }

    #[test]
    fn landing_server_is_benign() {
        let server = LandingServer::new("brand-7");
        let req = HttpRequest::get(Url::parse("http://landing-z.com/offer?c=7-0").unwrap());
        let resp = server.handle(&req, &mut ctx(&req));
        assert!(resp.body.as_html().unwrap().contains("brand-7"));
        assert!(resp.attachment_filename.is_none());
    }

    #[test]
    fn wrong_constructor_returns_none() {
        let benign = Campaign {
            id: CampaignId(2),
            advertiser: "brand-2".into(),
            behavior: CampaignBehavior::Benign {
                landing: DomainName::parse("landing-a.com").unwrap(),
            },
            bid: 1.0,
            active_from: 0,
            variant_count: 1,
            obfuscation_layers: 0,
            uses_flash_exploit: false,
            seed: 1,
        };
        assert!(ExploitServer::new(&benign).is_none());
        assert!(PayloadServer::new(&benign).is_none());
    }
}
