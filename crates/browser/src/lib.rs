//! # malvert-browser
//!
//! The emulated browser and honeyclient.
//!
//! The paper drove real Firefox instances with Selenium for crawling (§3.1)
//! and used Wepawet's emulated browser for behavioural analysis (§3.2.1).
//! This crate is both: it loads a page over the simulated network, parses
//! the HTML, executes every `<script>` with the AdScript interpreter against
//! a DOM/BOM host environment, follows the side effects (document.write,
//! navigations, injected iframes, `setTimeout` callbacks, image beacons,
//! forced downloads), recurses into iframes, and records everything as a
//! stream of [`BehaviorEvent`]s plus captured HTTP traffic.
//!
//! ## Browser personalities
//!
//! Drive-by kits probe the environment before committing (§2.1), and
//! cloaked creatives bail out when they detect an analysis system (§4.1).
//! [`Personality`] models this: the plugin set (with versions the exploit
//! probe checks), the user agent, and an *analysis-tells* score that cloaking
//! checks read. The crawler and the honeyclient run the vulnerable-victim
//! personality with no tells; the `detectable_analyst` preset exists to
//! demonstrate what cloaking does to a sloppy analysis setup.
//!
//! ## Determinism and bounds
//!
//! Loads are bounded: frame depth, navigations per frame, `setTimeout`
//! rounds, and the interpreter's step budget. A malicious page cannot hang
//! the crawler, and every visit replays identically given the study seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod events;
pub mod host;
pub mod personality;

pub use browser::{Browser, BrowserLimits, FrameSnapshot, PageVisit};
pub use events::{BehaviorEvent, Download};
pub use personality::Personality;
