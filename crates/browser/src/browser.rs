//! The page-load engine.

use crate::events::{BehaviorEvent, Download};
use crate::host::{BrowserHost, Effect, ScheduledTimer};
use crate::personality::Personality;
use malvert_adscript::{Interpreter, Limits, ScriptCache, ScriptEngine};
use malvert_html::{parse_document, serialize, Document, NodeId};
use malvert_net::{
    Body, CookieJar, FetchLog, FetchOutcome, HttpRequest, NetError, Network, TrafficCapture,
};
use malvert_types::rng::SeedTree;
use malvert_types::{CrawlError, CrawlErrorClass, ErrorCounters, SimTime, Url};

/// Bounds on a single page load.
#[derive(Debug, Clone, Copy)]
pub struct BrowserLimits {
    /// Maximum iframe nesting depth loaded.
    pub max_frame_depth: u32,
    /// Maximum navigations a single frame may perform.
    pub max_navigations: u32,
    /// Maximum rounds of `setTimeout` callback draining per document.
    pub max_timer_rounds: u32,
    /// AdScript interpreter limits per document.
    pub script_limits: Limits,
    /// Extra attempts spent per redirect hop on injected transient faults
    /// (DNS flaps, resets, timeouts, injected 5xx). Genuine failures are
    /// never retried, so fault-free visits are unaffected by this knob.
    pub max_fetch_retries: u32,
    /// Total retries one visit may spend across all of its fetches. A
    /// pathologically flaky page exhausts the budget and degrades instead of
    /// multiplying the visit's request count unboundedly.
    pub retry_budget: u32,
}

impl Default for BrowserLimits {
    fn default() -> Self {
        BrowserLimits {
            max_frame_depth: 4,
            max_navigations: 6,
            max_timer_rounds: 8,
            script_limits: Limits::default(),
            max_fetch_retries: 2,
            retry_budget: 16,
        }
    }
}

/// One `<iframe>` element found in a document, with the attributes the §4.4
/// sandbox analysis inspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IframeInfo {
    /// The `src` attribute as written.
    pub src: String,
    /// Whether the element carries the HTML5 `sandbox` attribute.
    pub has_sandbox: bool,
    /// Width attribute, when parseable.
    pub width: Option<u32>,
    /// Height attribute, when parseable.
    pub height: Option<u32>,
}

/// The result of loading one frame (recursively including children).
#[derive(Debug, Clone)]
pub struct FrameSnapshot {
    /// URL the frame was asked to load.
    pub requested_url: Url,
    /// URL the final document came from (after redirects/navigations).
    pub final_url: Url,
    /// Serialized final document markup (after script effects).
    pub html: String,
    /// The raw fetched document markup, before any script ran. This is the
    /// byte-exact server response — the corpus de-duplication key (the
    /// paper stored "HTML documents based on the contents of the iframes").
    pub raw_html: String,
    /// Iframe elements present in the final document.
    pub iframes: Vec<IframeInfo>,
    /// Child frames, in document order (statically declared first, then
    /// script-injected ones).
    pub children: Vec<FrameSnapshot>,
    /// True when the frame's load ended in a download instead of a document.
    pub ended_in_download: bool,
    /// True when the frame failed to load (NXDOMAIN etc.).
    pub failed: bool,
}

/// A completed page visit.
#[derive(Debug)]
pub struct PageVisit {
    /// The top frame (page) snapshot.
    pub top: FrameSnapshot,
    /// All behaviour events, page-wide, in occurrence order.
    pub events: Vec<BehaviorEvent>,
    /// All downloads triggered anywhere in the page.
    pub downloads: Vec<Download>,
    /// Full HTTP traffic capture for the visit.
    pub capture: TrafficCapture,
    /// Script compile units executed across all frames of the visit: one per
    /// `<script>` element run plus one per `eval` layer peeled. Deterministic
    /// in the page content — independent of whether a compile cache was
    /// attached or how often it hit.
    pub script_compile_units: u64,
    /// Per-class counters for every crawl error met during the visit,
    /// including failures a retry recovered from.
    pub errors: ErrorCounters,
    /// The typed errors behind [`PageVisit::errors`], in occurrence order.
    pub error_log: Vec<CrawlError>,
    /// True when the visit rendered but lost evidence to unrecovered
    /// transport faults (timeouts, resets, truncated or corrupted bodies,
    /// 5xx answers). DNS and redirect failures alone do not degrade a visit:
    /// NXDOMAIN bounces and broken chains are world behaviour the cloaking
    /// heuristics deliberately observe.
    pub degraded: bool,
}

/// The emulated browser.
pub struct Browser<'net> {
    network: &'net Network,
    personality: Personality,
    limits: BrowserLimits,
    study: SeedTree,
    script_cache: Option<ScriptCache>,
    script_engine: ScriptEngine,
}

struct LoadCtx {
    time: SimTime,
    events: Vec<BehaviorEvent>,
    downloads: Vec<Download>,
    capture: TrafficCapture,
    /// Per-visit cookie jar (fresh each visit, like the crawler's clean
    /// Selenium profile).
    jar: CookieJar,
    /// Compile units executed so far, page-wide.
    script_units: u64,
    /// Per-class error tallies, page-wide.
    errors: ErrorCounters,
    /// Typed errors in occurrence order, page-wide.
    error_log: Vec<CrawlError>,
    /// Retries the visit may still spend (see `BrowserLimits::retry_budget`).
    retries_left: u32,
}

impl<'net> Browser<'net> {
    /// Creates a browser over the simulated network.
    pub fn new(
        network: &'net Network,
        personality: Personality,
        limits: BrowserLimits,
        study: SeedTree,
    ) -> Self {
        Browser {
            network,
            personality,
            limits,
            study,
            script_cache: None,
            script_engine: ScriptEngine::default(),
        }
    }

    /// Attaches a shared script compilation cache. Inline scripts and `eval`
    /// layers compile through it instead of being parsed from scratch; a
    /// cache hit returns the identical program, so attaching a cache never
    /// changes what a page does.
    pub fn script_cache(mut self, cache: ScriptCache) -> Self {
        self.script_cache = Some(cache);
        self
    }

    /// Selects the script execution engine (bytecode VM by default). The
    /// engines are observably equivalent — the tree-walk oracle exists for
    /// differential testing — so switching never changes what a page does.
    pub fn script_engine(mut self, engine: ScriptEngine) -> Self {
        self.script_engine = engine;
        self
    }

    /// Visits `url` at simulated time `time`, loading the page and all its
    /// frames, executing scripts, and recording behaviour.
    pub fn visit(&self, url: &Url, time: SimTime) -> PageVisit {
        let mut ctx = LoadCtx {
            time,
            events: Vec::new(),
            downloads: Vec::new(),
            capture: TrafficCapture::new(),
            jar: CookieJar::new(),
            script_units: 0,
            errors: ErrorCounters::default(),
            error_log: Vec::new(),
            retries_left: self.limits.retry_budget,
        };
        let top = self.load_frame(url.clone(), None, 0, false, &mut ctx);
        let degraded = ctx.error_log.iter().any(|e| {
            !e.recovered && !matches!(e.class, CrawlErrorClass::Dns | CrawlErrorClass::Redirect)
        });
        PageVisit {
            top,
            events: ctx.events,
            downloads: ctx.downloads,
            capture: ctx.capture,
            script_compile_units: ctx.script_units,
            errors: ctx.errors,
            error_log: ctx.error_log,
            degraded,
        }
    }

    /// Fetches through the network with the visit's retry budget, folding the
    /// classified error log into the visit context. All of the browser's
    /// network traffic goes through here so every failure — recovered or
    /// not — lands in the visit's error accounting.
    fn fetch(&self, req: &HttpRequest, ctx: &mut LoadCtx) -> Result<FetchOutcome, NetError> {
        let mut log = FetchLog::default();
        let max_retries = self.limits.max_fetch_retries.min(ctx.retries_left);
        let result = self
            .network
            .fetch_logged(req, ctx.time, &mut ctx.capture, max_retries, &mut log);
        // `max_retries` caps each hop; a long flaky chain may overspend the
        // remaining budget by a bounded amount, which saturation absorbs.
        ctx.retries_left = ctx.retries_left.saturating_sub(log.retries);
        ctx.errors.retries += u64::from(log.retries);
        for err in log.errors {
            ctx.errors.record(err.class);
            ctx.error_log.push(err);
        }
        result
    }

    /// Loads one frame. The returned snapshot describes the **first**
    /// document rendered in the frame (the creative, for ad iframes); script
    /// navigations after it are still followed — their traffic, downloads,
    /// and behaviour land in the page-wide records — but they do not replace
    /// the snapshot. This mirrors how the study stored ad iframes: the
    /// rendered advertisement document, with the post-render activity in the
    /// captured traffic.
    fn load_frame(
        &self,
        url: Url,
        referrer: Option<Url>,
        depth: u32,
        sandboxed: bool,
        ctx: &mut LoadCtx,
    ) -> FrameSnapshot {
        let mut current_url = url.clone();
        let mut navigations = 0u32;
        let mut referrer = referrer;
        let mut first_snapshot: Option<FrameSnapshot> = None;

        loop {
            let mut req = HttpRequest::get(current_url.clone())
                .with_user_agent(&self.personality.user_agent);
            if let Some(host) = current_url.host() {
                req = req.with_cookies(ctx.jar.header_for(host));
            }
            if let Some(r) = &referrer {
                req = req.with_referrer(r.clone());
            }
            let outcome = match self.fetch(&req, ctx) {
                Ok(o) => o,
                Err(NetError::NxDomain(_)) | Err(_) => {
                    // A failed *navigation* keeps the already-rendered
                    // document (NX cloaking bounces land here); a failed
                    // initial load fails the frame.
                    return first_snapshot.unwrap_or(FrameSnapshot {
                        requested_url: url,
                        final_url: current_url,
                        html: String::new(),
                        raw_html: String::new(),
                        iframes: Vec::new(),
                        children: Vec::new(),
                        ended_in_download: false,
                        failed: true,
                    });
                }
            };
            let final_url = outcome.final_url.clone();
            if let Some(host) = final_url.host() {
                for (name, value) in &outcome.response.set_cookies {
                    ctx.jar.store(host, name, value);
                }
            }
            match outcome.response.body {
                Body::Download(bytes) => {
                    ctx.events.push(BehaviorEvent::DownloadTriggered {
                        frame: current_url.clone(),
                        url: final_url.clone(),
                    });
                    ctx.downloads.push(Download {
                        url: final_url.clone(),
                        filename: outcome.response.attachment_filename.clone(),
                        bytes,
                    });
                    return first_snapshot.unwrap_or(FrameSnapshot {
                        requested_url: url,
                        final_url,
                        html: String::new(),
                        raw_html: String::new(),
                        iframes: Vec::new(),
                        children: Vec::new(),
                        ended_in_download: true,
                        failed: false,
                    });
                }
                Body::Html(html) => {
                    let is_first = first_snapshot.is_none();
                    let (snapshot, next_navigation) =
                        self.process_document(&url, &final_url, &html, depth, sandboxed, ctx);
                    if is_first {
                        first_snapshot = Some(snapshot);
                    }
                    match next_navigation {
                        Some(target) if navigations < self.limits.max_navigations => {
                            navigations += 1;
                            referrer = Some(final_url.clone());
                            match final_url.join(&target) {
                                Ok(next) => {
                                    current_url = next;
                                    continue;
                                }
                                Err(_) => return first_snapshot.expect("set above"),
                            }
                        }
                        _ => return first_snapshot.expect("set above"),
                    }
                }
                // Scripts/images/empty as a frame document: nothing to run.
                _ => {
                    return first_snapshot.unwrap_or(FrameSnapshot {
                        requested_url: url,
                        final_url,
                        html: String::new(),
                        raw_html: String::new(),
                        iframes: Vec::new(),
                        children: Vec::new(),
                        ended_in_download: false,
                        failed: false,
                    });
                }
            }
        }
    }

    /// Parses and executes one document. Returns the snapshot and, when a
    /// script navigated the frame, the navigation target.
    fn process_document(
        &self,
        requested_url: &Url,
        final_url: &Url,
        html: &str,
        depth: u32,
        sandboxed: bool,
        ctx: &mut LoadCtx,
    ) -> (FrameSnapshot, Option<String>) {
        let mut doc = parse_document(html);

        // Set up one interpreter for the whole document (scripts share
        // globals, like a real page).
        let host = BrowserHost::new(self.personality.clone(), final_url.clone());
        let seed = self
            .study
            .branch("script-rng")
            .branch(&final_url.without_fragment())
            .seed();
        let mut interp = Interpreter::new(host, self.limits.script_limits, seed);
        interp.set_engine(self.script_engine);
        if let Some(cache) = &self.script_cache {
            interp.set_script_cache(cache.clone());
        }
        BrowserHost::install_globals(&mut interp, &self.personality, final_url);
        // Snapshot the cookies visible to this document. `ObjId` is `Copy`,
        // so peek at the global by reference instead of cloning the value.
        if let Some(host) = final_url.host() {
            let visible = ctx.jar.header_for(host);
            let doc_obj = match interp.get_global("document") {
                Some(malvert_adscript::Value::Obj(id)) => Some(*id),
                _ => None,
            };
            if let Some(doc_obj) = doc_obj {
                interp
                    .heap
                    .get_mut(doc_obj)
                    .props
                    .insert("cookie", malvert_adscript::Value::str(visible));
            }
        }

        let mut navigation: Option<String> = None;
        let mut top_navigation: Option<String> = None;
        let mut injected: Vec<(String, u64)> = Vec::new();

        // Execute scripts in document order.
        let scripts: Vec<String> = doc
            .elements_by_tag("script")
            .map(|id| doc.text_content(id))
            .collect();
        for src in scripts {
            if src.trim().is_empty() {
                continue;
            }
            let result = match &self.script_cache {
                Some(cache) => cache
                    .compile(&src)
                    .and_then(|script| interp.run_program(&script)),
                None => interp.run(&src),
            };
            if let Err(e) = result {
                ctx.events.push(BehaviorEvent::ScriptError {
                    frame: final_url.clone(),
                    message: e.to_string(),
                });
            }
            self.drain_host(
                &mut interp,
                &mut doc,
                final_url,
                sandboxed,
                ctx,
                &mut navigation,
                &mut top_navigation,
                &mut injected,
            );
        }

        // Timer rounds: honeyclients fast-forward timers to flush delayed
        // behaviour (the deceptive countdown, delayed hijacks).
        for _ in 0..self.limits.max_timer_rounds {
            let timers: Vec<ScheduledTimer> = interp.host.take_timers();
            if timers.is_empty() {
                break;
            }
            for timer in timers {
                ctx.events.push(BehaviorEvent::TimerScheduled {
                    frame: final_url.clone(),
                });
                if let Err(e) = interp.call_value(&timer.callback, None, &[]) {
                    ctx.events.push(BehaviorEvent::ScriptError {
                        frame: final_url.clone(),
                        message: e.to_string(),
                    });
                }
            }
            self.drain_host(
                &mut interp,
                &mut doc,
                final_url,
                sandboxed,
                ctx,
                &mut navigation,
                &mut top_navigation,
                &mut injected,
            );
        }

        if let Some(target) = &top_navigation {
            ctx.events.push(BehaviorEvent::TopLocationHijack {
                frame: final_url.clone(),
                target: target.clone(),
            });
        }

        // Fetch plugin content: `<embed src>` / `<object data>` elements.
        // Flash creatives deliver their payload this way — the fetched
        // bytes land in the downloads list for the scanner, exactly like
        // Wepawet captured Flash files found in advertisements.
        let plugin_srcs: Vec<String> = doc
            .elements()
            .filter_map(|(_, e)| match e.name.as_str() {
                "embed" => e.attr("src").map(str::to_string),
                "object" => e.attr("data").map(str::to_string),
                _ => None,
            })
            .filter(|s| !s.is_empty())
            .collect();
        for src in plugin_srcs {
            if let Ok(resource_url) = final_url.join(&src) {
                let req = HttpRequest::get(resource_url.clone())
                    .with_referrer(final_url.clone())
                    .with_user_agent(&self.personality.user_agent);
                if let Ok(outcome) = self.fetch(&req, ctx) {
                    if let Body::Download(bytes) = outcome.response.body {
                        ctx.events.push(BehaviorEvent::DownloadTriggered {
                            frame: final_url.clone(),
                            url: outcome.final_url.clone(),
                        });
                        ctx.downloads.push(Download {
                            url: outcome.final_url,
                            filename: outcome.response.attachment_filename,
                            bytes,
                        });
                    }
                }
            }
        }

        // Collect iframe elements from the final DOM.
        let iframes: Vec<IframeInfo> = doc
            .elements_by_tag("iframe")
            .filter_map(|id| doc.element(id))
            .map(|e| IframeInfo {
                src: e.attr("src").unwrap_or("").to_string(),
                has_sandbox: e.has_attr("sandbox"),
                width: e.attr("width").and_then(|w| w.parse().ok()),
                height: e.attr("height").and_then(|h| h.parse().ok()),
            })
            .collect();

        // Load child frames: declared iframes first, then script-injected.
        let mut children = Vec::new();
        if depth < self.limits.max_frame_depth {
            for frame in &iframes {
                if frame.src.is_empty() {
                    continue;
                }
                if let Ok(child_url) = final_url.join(&frame.src) {
                    // Nested browsing contexts inherit sandbox flags.
                    children.push(self.load_frame(
                        child_url,
                        Some(final_url.clone()),
                        depth + 1,
                        sandboxed || frame.has_sandbox,
                        ctx,
                    ));
                }
            }
            for (src, _area) in &injected {
                if let Ok(child_url) = final_url.join(src) {
                    children.push(self.load_frame(
                        child_url,
                        Some(final_url.clone()),
                        depth + 1,
                        sandboxed,
                        ctx,
                    ));
                }
            }
        }

        let mut all_iframes = iframes;
        for (src, area) in &injected {
            all_iframes.push(IframeInfo {
                src: src.clone(),
                has_sandbox: false,
                width: Some((*area).min(u64::from(u32::MAX)) as u32),
                height: Some(1),
            });
        }

        ctx.script_units += interp.script_units();

        let snapshot = FrameSnapshot {
            requested_url: requested_url.clone(),
            final_url: final_url.clone(),
            html: serialize(&doc),
            raw_html: html.to_string(),
            iframes: all_iframes,
            children,
            ended_in_download: false,
            failed: false,
        };
        (snapshot, navigation)
    }

    /// Applies pending host effects to the document and records events.
    #[allow(clippy::too_many_arguments)]
    fn drain_host(
        &self,
        interp: &mut Interpreter<BrowserHost>,
        doc: &mut Document,
        frame_url: &Url,
        sandboxed: bool,
        ctx: &mut LoadCtx,
        navigation: &mut Option<String>,
        top_navigation: &mut Option<String>,
        injected: &mut Vec<(String, u64)>,
    ) {
        if interp.host.plugins_enumerated {
            interp.host.plugins_enumerated = false;
            ctx.events.push(BehaviorEvent::PluginEnumeration {
                frame: frame_url.clone(),
            });
        }
        for effect in interp.host.take_effects() {
            match effect {
                Effect::Write(markup) => {
                    ctx.events.push(BehaviorEvent::DocumentWrite {
                        frame: frame_url.clone(),
                        bytes: markup.len(),
                    });
                    // Append the written markup to the document body (or
                    // root). Scripts inside written markup are not
                    // re-executed — matching how our creatives use write().
                    let parsed = parse_document(&markup);
                    let attach_under = doc
                        .first_by_tag("body")
                        .unwrap_or(NodeId::ROOT);
                    let root_children: Vec<NodeId> =
                        parsed.node(NodeId::ROOT).children.clone();
                    for child in root_children {
                        let sub = parsed.extract_subtree(child);
                        merge_subtree(doc, attach_under, &sub);
                    }
                }
                Effect::Navigate { target } => {
                    ctx.events.push(BehaviorEvent::FrameNavigation {
                        frame: frame_url.clone(),
                        target: target.clone(),
                    });
                    navigation.get_or_insert(target);
                }
                Effect::NavigateTop { target } => {
                    if sandboxed {
                        // HTML5 sandbox without `allow-top-navigation`:
                        // the hijack attempt is blocked and recorded.
                        ctx.events.push(BehaviorEvent::SandboxedHijackBlocked {
                            frame: frame_url.clone(),
                            target,
                        });
                    } else {
                        top_navigation.get_or_insert(target);
                    }
                }
                Effect::InjectIframe { src, area } => {
                    ctx.events.push(BehaviorEvent::IframeInjection {
                        frame: frame_url.clone(),
                        src: src.clone(),
                        area,
                    });
                    injected.push((src, area));
                }
                Effect::SetCookie { pair } => {
                    if let Some(host) = frame_url.host() {
                        ctx.jar.store_pair(host, &pair);
                    }
                }
                Effect::Beacon { target } => {
                    ctx.events.push(BehaviorEvent::Beacon {
                        frame: frame_url.clone(),
                        target: target.clone(),
                    });
                    // Fire the beacon over the network (ignore failures).
                    if let Ok(beacon_url) = frame_url.join(&target) {
                        let req = HttpRequest::get(beacon_url)
                            .with_referrer(frame_url.clone())
                            .with_user_agent(&self.personality.user_agent);
                        let _ = self.fetch(&req, ctx);
                    }
                }
            }
        }
    }
}

/// Copies a parsed subtree document (rooted at its ROOT's single child) into
/// `doc` under `parent`.
fn merge_subtree(doc: &mut Document, parent: NodeId, sub: &Document) {
    fn copy(doc: &mut Document, parent: NodeId, sub: &Document, node: NodeId) {
        let data = sub.node(node);
        let new_id = doc.append(parent, data.kind.clone());
        for &child in &data.children {
            copy(doc, new_id, sub, child);
        }
    }
    for &child in &sub.node(NodeId::ROOT).children {
        copy(doc, parent, sub, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_net::{HttpResponse, OriginServer, ServeCtx};
    use std::sync::Arc;

    fn html_server(html: &'static str) -> Arc<dyn OriginServer> {
        Arc::new(move |_req: &HttpRequest, _ctx: &mut ServeCtx| {
            HttpResponse::ok(Body::Html(html.to_string()))
        })
    }

    fn domain(s: &str) -> malvert_types::DomainName {
        malvert_types::DomainName::parse(s).unwrap()
    }

    fn browser_on(net: &Network) -> Browser<'_> {
        Browser::new(
            net,
            Personality::vulnerable_victim(),
            BrowserLimits::default(),
            SeedTree::new(1),
        )
    }

    #[test]
    fn loads_simple_page() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(domain("a.com"), html_server("<html><body><p>hi</p></body></html>"));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://a.com/").unwrap(), SimTime::ZERO);
        assert!(!visit.top.failed);
        assert!(visit.top.html.contains("<p>hi</p>"));
        assert!(visit.events.is_empty());
        assert_eq!(visit.capture.len(), 1);
    }

    #[test]
    fn loads_declared_iframes() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("page.com"),
            html_server(r#"<html><body><iframe src="http://frame.com/inner"></iframe></body></html>"#),
        );
        net.register(domain("frame.com"), html_server("<html><body>inner</body></html>"));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://page.com/").unwrap(), SimTime::ZERO);
        assert_eq!(visit.top.children.len(), 1);
        assert!(visit.top.children[0].html.contains("inner"));
        assert_eq!(visit.top.iframes.len(), 1);
        assert!(!visit.top.iframes[0].has_sandbox);
    }

    #[test]
    fn sandbox_attribute_detected() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("page.com"),
            html_server(
                r#"<html><body><iframe src="http://frame.com/" sandbox="allow-scripts"></iframe></body></html>"#,
            ),
        );
        net.register(domain("frame.com"), html_server("<html></html>"));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://page.com/").unwrap(), SimTime::ZERO);
        assert!(visit.top.iframes[0].has_sandbox);
    }

    #[test]
    fn script_document_write_mutates_dom() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("w.com"),
            html_server("<html><body><script>document.write('<div class=\"late\">x</div>');</script></body></html>"),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://w.com/").unwrap(), SimTime::ZERO);
        assert!(visit.top.html.contains("class=\"late\""));
        assert!(visit
            .events
            .iter()
            .any(|e| matches!(e, BehaviorEvent::DocumentWrite { .. })));
    }

    #[test]
    fn script_navigation_followed() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("start.com"),
            html_server("<html><body><script>window.location = 'http://end.com/';</script></body></html>"),
        );
        net.register(domain("end.com"), html_server("<html><body>arrived</body></html>"));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://start.com/").unwrap(), SimTime::ZERO);
        // First-document semantics: the snapshot stays the initial page...
        assert_eq!(visit.top.final_url.to_string(), "http://start.com/");
        // ...but the navigation is followed: its event and traffic recorded.
        assert!(visit
            .events
            .iter()
            .any(|e| matches!(e, BehaviorEvent::FrameNavigation { .. })));
        assert!(visit
            .capture
            .exchanges()
            .iter()
            .any(|e| e.url.to_string() == "http://end.com/"));
    }

    #[test]
    fn failed_navigation_keeps_first_document() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("cloaked.com"),
            html_server(
                "<html><body><p>creative</p><script>window.location = 'http://gone.nx/';</script></body></html>",
            ),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://cloaked.com/").unwrap(), SimTime::ZERO);
        assert!(!visit.top.failed);
        assert!(visit.top.html.contains("creative"));
        // The NX attempt is visible in the capture — the cloaking tell.
        assert!(visit.capture.exchanges().iter().any(|e| e.nx_domain));
    }

    #[test]
    fn navigation_loop_bounded() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("loop.com"),
            Arc::new(|req: &HttpRequest, _ctx: &mut ServeCtx| {
                let n: u32 = req
                    .url
                    .query_param("n")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                HttpResponse::ok(Body::Html(format!(
                    "<html><body><script>window.location = 'http://loop.com/?n={}';</script></body></html>",
                    n + 1
                )))
            }),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://loop.com/?n=0").unwrap(), SimTime::ZERO);
        // max_navigations (6) + initial load.
        assert_eq!(visit.capture.len() as u32, BrowserLimits::default().max_navigations + 1);
    }

    #[test]
    fn timer_callbacks_fire() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("t.com"),
            html_server(
                "<html><body><script>var n = 0; function tick() { n++; \
                 if (n < 3) { setTimeout(tick, 1000); } else { document.write('<i>done</i>'); } } \
                 setTimeout(tick, 1000);</script></body></html>",
            ),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://t.com/").unwrap(), SimTime::ZERO);
        assert!(visit.top.html.contains("<i>done</i>"));
        let timer_events = visit
            .events
            .iter()
            .filter(|e| matches!(e, BehaviorEvent::TimerScheduled { .. }))
            .count();
        assert_eq!(timer_events, 3);
    }

    #[test]
    fn injected_iframe_loaded_and_recorded() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("inject.com"),
            html_server(
                "<html><body><script>var fr = document.createElement('iframe'); \
                 fr.width = 1; fr.height = 1; fr.src = 'http://hidden.biz/gate'; \
                 document.body.appendChild(fr);</script></body></html>",
            ),
        );
        net.register(domain("hidden.biz"), html_server("<html><body>kit</body></html>"));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://inject.com/").unwrap(), SimTime::ZERO);
        assert!(visit
            .events
            .iter()
            .any(|e| matches!(e, BehaviorEvent::IframeInjection { area: 1, .. })));
        assert_eq!(visit.top.children.len(), 1);
        assert!(visit.top.children[0].html.contains("kit"));
    }

    #[test]
    fn download_recorded() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("dl.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::ok(Body::Download(bytes::Bytes::from_static(b"MZ\x90payload")))
                    .as_attachment("update.exe")
            }),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://dl.com/get").unwrap(), SimTime::ZERO);
        assert!(visit.top.ended_in_download);
        assert_eq!(visit.downloads.len(), 1);
        assert_eq!(visit.downloads[0].filename.as_deref(), Some("update.exe"));
        assert_eq!(&visit.downloads[0].bytes[..2], b"MZ");
    }

    #[test]
    fn hijack_event_from_subframe() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("pub.com"),
            html_server(r#"<html><body><iframe src="http://ad.biz/c"></iframe></body></html>"#),
        );
        net.register(
            domain("ad.biz"),
            html_server("<html><body><script>top.location = 'http://scam.ws/lp';</script></body></html>"),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://pub.com/").unwrap(), SimTime::ZERO);
        let hijack = visit
            .events
            .iter()
            .find(|e| matches!(e, BehaviorEvent::TopLocationHijack { .. }))
            .expect("hijack recorded");
        match hijack {
            BehaviorEvent::TopLocationHijack { frame, target } => {
                assert_eq!(frame.host().unwrap().as_str(), "ad.biz");
                assert_eq!(target, "http://scam.ws/lp");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn nxdomain_frame_marked_failed() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("page.com"),
            html_server(r#"<html><body><iframe src="http://gone.biz/"></iframe></body></html>"#),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://page.com/").unwrap(), SimTime::ZERO);
        assert!(visit.top.children[0].failed);
        assert!(visit.capture.exchanges().iter().any(|e| e.nx_domain));
    }

    #[test]
    fn frame_depth_bounded() {
        let mut net = Network::new(SeedTree::new(1));
        // Self-nesting page.
        net.register(
            domain("nest.com"),
            html_server(r#"<html><body><iframe src="http://nest.com/"></iframe></body></html>"#),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://nest.com/").unwrap(), SimTime::ZERO);
        // Depth cap (4) + top = at most 5 fetches.
        assert!(visit.capture.len() <= 5);
    }

    #[test]
    fn beacons_fetch_over_network() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("b.com"),
            html_server(
                "<html><body><script>var i = new Image(); i.src = 'http://track.net/px';</script></body></html>",
            ),
        );
        net.register(
            domain("track.net"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| HttpResponse::ok(Body::Empty)),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://b.com/").unwrap(), SimTime::ZERO);
        assert!(visit
            .capture
            .exchanges()
            .iter()
            .any(|e| e.url.host().map(|h| h.as_str() == "track.net").unwrap_or(false)));
    }

    #[test]
    fn document_cookie_set_and_read_across_frames() {
        let mut net = Network::new(SeedTree::new(1));
        // Top page writes a cookie, then its iframe (same registered domain)
        // reads it back and records the value via document.write.
        net.register(
            domain("pages.site.com"),
            html_server(
                "<html><body><script>document.cookie = 'visited=yes; path=/';</script>\
                 <iframe src=\"http://frames.site.com/inner\"></iframe></body></html>",
            ),
        );
        net.register(
            domain("frames.site.com"),
            html_server(
                "<html><body><script>document.write('<i>' + document.cookie + '</i>');</script></body></html>",
            ),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://pages.site.com/").unwrap(), SimTime::ZERO);
        assert!(
            visit.top.children[0].html.contains("visited=yes"),
            "iframe should see the cookie: {}",
            visit.top.children[0].html
        );
    }

    #[test]
    fn set_cookie_header_absorbed_and_sent() {
        let mut net = Network::new(SeedTree::new(1));
        // First response sets a cookie; the page's iframe request to the
        // same registered domain must carry it.
        net.register(
            domain("adnet-x.com"),
            Arc::new(|req: &HttpRequest, _ctx: &mut ServeCtx| {
                if req.url.path() == "/" {
                    HttpResponse::ok(Body::Html(
                        r#"<html><body><iframe src="http://adnet-x.com/frame"></iframe></body></html>"#
                            .to_string(),
                    ))
                    .with_cookie("fcap", "1")
                } else if req.cookies.contains("fcap=1") {
                    HttpResponse::ok(Body::Html("<html><body>capped</body></html>".to_string()))
                } else {
                    HttpResponse::ok(Body::Html("<html><body>fresh</body></html>".to_string()))
                }
            }),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://adnet-x.com/").unwrap(), SimTime::ZERO);
        assert!(
            visit.top.children[0].html.contains("capped"),
            "frequency cap should see the cookie within one visit: {}",
            visit.top.children[0].html
        );
        // A fresh visit (new jar) evades the cap — the reason stateless
        // crawlers see everything.
        let visit2 = browser.visit(
            &Url::parse("http://adnet-x.com/frame").unwrap(),
            SimTime::ZERO,
        );
        assert!(visit2.top.html.contains("fresh"));
    }

    #[test]
    fn script_cache_changes_nothing_but_compiles_once() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("c.com"),
            html_server(
                "<html><body><script>eval('document.write(\"<b>deep</b>\")');</script></body></html>",
            ),
        );
        let plain = browser_on(&net).visit(&Url::parse("http://c.com/").unwrap(), SimTime::ZERO);

        let stats = malvert_adscript::ScriptStats::new();
        let cache = ScriptCache::new(64, stats.clone());
        let cached = Browser::new(
            &net,
            Personality::vulnerable_victim(),
            BrowserLimits::default(),
            SeedTree::new(1),
        )
        .script_cache(cache);
        let url = Url::parse("http://c.com/").unwrap();
        let first = cached.visit(&url, SimTime::ZERO);
        let second = cached.visit(&url, SimTime::ZERO);

        // Byte-identical rendering with and without the cache, hit or miss.
        assert!(plain.top.html.contains("<b>deep</b>"));
        assert_eq!(first.top.html, plain.top.html);
        assert_eq!(second.top.html, plain.top.html);
        // One inline script plus one eval layer, every visit.
        assert_eq!(plain.script_compile_units, 2);
        assert_eq!(first.script_compile_units, 2);
        assert_eq!(second.script_compile_units, 2);
        // The second visit compiled nothing new.
        let counts = stats.snapshot();
        assert_eq!(counts.lookups, 4);
        assert_eq!(counts.cache_misses, 2);
        assert_eq!(counts.cache_hits, 2);
    }

    #[test]
    fn fault_free_visits_report_clean_counters() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(domain("ok.com"), html_server("<html><body>fine</body></html>"));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://ok.com/").unwrap(), SimTime::ZERO);
        assert!(visit.errors.is_clean());
        assert!(visit.error_log.is_empty());
        assert!(!visit.degraded);
    }

    #[test]
    fn truncation_degrades_but_does_not_fail_the_visit() {
        let mut net = Network::new(SeedTree::new(2));
        net.register(
            domain("cut.com"),
            html_server("<html><body><p>a long creative body that will be cut</p></body></html>"),
        );
        net.set_fault_profile(Some(malvert_net::FaultProfile {
            truncated_body: 1.0,
            ..malvert_net::FaultProfile::default()
        }));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://cut.com/").unwrap(), SimTime::ZERO);
        // The frame loaded — partial evidence, not a lost visit.
        assert!(!visit.top.failed);
        assert!(visit.degraded);
        assert_eq!(visit.errors.truncated_bodies, 1);
        assert!(visit.error_log.iter().any(|e| !e.recovered));
    }

    #[test]
    fn transient_faults_are_retried_and_recovered() {
        let mut net = Network::new(SeedTree::new(3));
        net.register(domain("flap.com"), html_server("<html><body>made it</body></html>"));
        net.set_fault_profile(Some(malvert_net::FaultProfile {
            server_error: 1.0,
            max_flaps: 1,
            ..malvert_net::FaultProfile::default()
        }));
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://flap.com/").unwrap(), SimTime::ZERO);
        assert!(!visit.top.failed);
        assert!(visit.top.html.contains("made it"));
        // The flap was recovered by a retry, so the visit is not degraded,
        // but the failure stays visible in the accounting.
        assert!(!visit.degraded);
        assert_eq!(visit.errors.retries, 1);
        assert_eq!(visit.errors.http_5xx, 1);
        assert!(visit.error_log[0].recovered);
    }

    #[test]
    fn genuine_nxdomain_counts_as_dns_but_not_degraded() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("page.com"),
            html_server(r#"<html><body><iframe src="http://gone.biz/"></iframe></body></html>"#),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://page.com/").unwrap(), SimTime::ZERO);
        // The NX bounce is world behaviour the heuristics observe — it is
        // tallied, but does not mark the visit degraded.
        assert_eq!(visit.errors.dns_failures, 1);
        assert!(!visit.degraded);
        assert_eq!(visit.errors.retries, 0);
    }

    #[test]
    fn script_error_recorded_not_fatal() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("err.com"),
            html_server("<html><body><script>this is not javascript</script><p>still here</p></body></html>"),
        );
        let browser = browser_on(&net);
        let visit = browser.visit(&Url::parse("http://err.com/").unwrap(), SimTime::ZERO);
        assert!(visit
            .events
            .iter()
            .any(|e| matches!(e, BehaviorEvent::ScriptError { .. })));
        assert!(visit.top.html.contains("still here"));
    }
}
