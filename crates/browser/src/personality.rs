//! Browser personalities: plugin sets and analysis detectability.

/// A browser plugin visible through `navigator.plugins`.
#[derive(Debug, Clone, PartialEq)]
pub struct Plugin {
    /// Display name (exploit probes match substrings like "Flash").
    pub name: String,
    /// Version string (probes compare with `parseFloat`).
    pub version: String,
}

/// The environment a page observes: user agent, plugins, screen, and how
/// detectable the analysis harness is.
#[derive(Debug, Clone, PartialEq)]
pub struct Personality {
    /// `navigator.userAgent`.
    pub user_agent: String,
    /// `navigator.plugins`.
    pub plugins: Vec<Plugin>,
    /// `screen.width` / `screen.height`.
    pub screen: (u32, u32),
    /// `navigator.analysisTells`: 0 for a clean victim profile; positive
    /// when the harness leaks analysis artefacts that cloaking checks read.
    pub analysis_tells: u32,
}

impl Personality {
    /// The crawl/honeyclient profile: a victim with exploitable plugin
    /// versions and no analysis tells. (Wepawet emulates exactly this.)
    pub fn vulnerable_victim() -> Self {
        Personality {
            user_agent:
                "Mozilla/5.0 (Windows NT 6.1; rv:24.0) Gecko/20100101 Firefox/24.0".to_string(),
            plugins: vec![
                Plugin {
                    name: "Shockwave Flash".to_string(),
                    version: "11.2".to_string(),
                },
                Plugin {
                    name: "Java(TM) Platform".to_string(),
                    version: "7.13".to_string(),
                },
                Plugin {
                    name: "Adobe Acrobat".to_string(),
                    version: "9.5".to_string(),
                },
            ],
            screen: (1366, 768),
            analysis_tells: 0,
        }
    }

    /// A fully patched user: exploit probes find nothing to hit.
    pub fn patched_user() -> Self {
        Personality {
            user_agent:
                "Mozilla/5.0 (Windows NT 6.1; rv:31.0) Gecko/20100101 Firefox/31.0".to_string(),
            plugins: vec![
                Plugin {
                    name: "Shockwave Flash".to_string(),
                    version: "14.0".to_string(),
                },
                Plugin {
                    name: "Java(TM) Platform".to_string(),
                    version: "8.11".to_string(),
                },
            ],
            screen: (1920, 1080),
            analysis_tells: 0,
        }
    }

    /// A sloppy analysis environment that cloaking checks can spot.
    pub fn detectable_analyst() -> Self {
        Personality {
            analysis_tells: 1,
            ..Personality::vulnerable_victim()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_has_exploitable_flash() {
        let p = Personality::vulnerable_victim();
        let flash = p
            .plugins
            .iter()
            .find(|pl| pl.name.contains("Flash"))
            .unwrap();
        let v: f64 = flash.version.parse().unwrap();
        assert!(v < 11.8, "victim Flash must predate the probe threshold");
        assert_eq!(p.analysis_tells, 0);
    }

    #[test]
    fn patched_user_is_safe() {
        let p = Personality::patched_user();
        for pl in &p.plugins {
            let v: f64 = pl.version.parse().unwrap();
            if pl.name.contains("Flash") {
                assert!(v >= 11.8);
            }
            if pl.name.contains("Java") {
                assert!(v >= 7.25);
            }
        }
    }

    #[test]
    fn analyst_is_detectable() {
        assert!(Personality::detectable_analyst().analysis_tells > 0);
    }
}
