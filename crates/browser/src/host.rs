//! The DOM/BOM host environment bound into the AdScript interpreter.

use crate::personality::Personality;
use malvert_adscript::interp::Host;
use malvert_adscript::value::{Heap, ObjId, Value};
use malvert_types::Url;

/// A side effect a script requested; the browser applies these after the
/// script (or timer round) finishes, like real event-loop turns.
#[derive(Debug, Clone)]
pub enum Effect {
    /// `document.write(markup)`.
    Write(String),
    /// `window.location = target` / `location.href = …` / `location.replace`.
    Navigate {
        /// Destination (string as the script supplied it).
        target: String,
    },
    /// `top.location = target` from a (possibly cross-origin) frame.
    NavigateTop {
        /// Destination.
        target: String,
    },
    /// An iframe element was attached with this `src`.
    InjectIframe {
        /// Frame source.
        src: String,
        /// Width × height in px².
        area: u64,
    },
    /// `new Image().src = target`.
    Beacon {
        /// Beacon URL.
        target: String,
    },
    /// `document.cookie = "name=value; …"` — the browser stores it in the
    /// visit's cookie jar.
    SetCookie {
        /// The raw assignment string.
        pair: String,
    },
}

/// A scheduled `setTimeout` callback.
#[derive(Debug, Clone)]
pub struct ScheduledTimer {
    /// The function value to call.
    pub callback: Value,
    /// Requested delay in ms (only used for ordering).
    pub delay_ms: f64,
}

/// The browser's [`Host`] implementation for one document's scripts.
///
/// The browser constructs one per frame document, installs the globals via
/// [`BrowserHost::install_globals`], runs the scripts, then drains
/// [`BrowserHost::take_effects`] / [`BrowserHost::take_timers`].
#[derive(Debug)]
pub struct BrowserHost {
    /// The personality this document observes (kept for debugging dumps).
    #[allow(dead_code)]
    personality: Personality,
    /// The document's own URL (kept for debugging dumps).
    #[allow(dead_code)]
    frame_url: Url,
    /// Effects in request order.
    pub effects: Vec<Effect>,
    /// Timers scheduled this run.
    pub timers: Vec<ScheduledTimer>,
    /// Whether `navigator.plugins` was read.
    pub plugins_enumerated: bool,
    next_timer_id: f64,
}

impl BrowserHost {
    /// Creates the host for a document at `frame_url`.
    pub fn new(personality: Personality, frame_url: Url) -> Self {
        BrowserHost {
            personality,
            frame_url,
            effects: Vec::new(),
            timers: Vec::new(),
            plugins_enumerated: false,
            next_timer_id: 1.0,
        }
    }

    /// Drains the accumulated effects.
    pub fn take_effects(&mut self) -> Vec<Effect> {
        std::mem::take(&mut self.effects)
    }

    /// Drains the scheduled timers.
    pub fn take_timers(&mut self) -> Vec<ScheduledTimer> {
        std::mem::take(&mut self.timers)
    }

    /// Installs `window`, `document`, `navigator`, `location`, `top`,
    /// `screen`, `setTimeout`, and the `Image`/`Date` constructors into the
    /// interpreter's globals. Call once before running the first script.
    pub fn install_globals<H: Host>(
        interp: &mut malvert_adscript::Interpreter<H>,
        personality: &Personality,
        frame_url: &Url,
    ) {
        let heap = &mut interp.heap;

        // navigator + plugins array.
        let navigator = heap.alloc_native("navigator");
        let plugin_objs: Vec<Value> = personality
            .plugins
            .iter()
            .map(|p| {
                let o = heap.alloc_object();
                heap.get_mut(o)
                    .props
                    .insert("name", Value::str(&p.name));
                heap.get_mut(o)
                    .props
                    .insert("version", Value::str(&p.version));
                Value::Obj(o)
            })
            .collect();
        let plugins = heap.alloc_array(plugin_objs);
        {
            let nav = heap.get_mut(navigator);
            nav.props.insert("plugins", Value::Obj(plugins));
            nav.props
                .insert("userAgent", Value::str(&personality.user_agent));
            nav.props.insert(
                "analysisTells",
                Value::Num(f64::from(personality.analysis_tells)),
            );
            nav.props
                .insert("language", Value::str("en-US"));
        }

        // screen.
        let screen = heap.alloc_object();
        heap.get_mut(screen)
            .props
            .insert("width", Value::Num(f64::from(personality.screen.0)));
        heap.get_mut(screen)
            .props
            .insert("height", Value::Num(f64::from(personality.screen.1)));

        // location object.
        let location = heap.alloc_native("location");
        heap.get_mut(location)
            .props
            .insert("href", Value::str(frame_url.to_string()));
        heap.get_mut(location).props.insert(
            "host",
            Value::str(
                frame_url
                    .host()
                    .map(|h| h.to_string())
                    .unwrap_or_default(),
            ),
        );
        heap.get_mut(location)
            .props
            .insert("replace", Value::native("location.replace"));
        heap.get_mut(location)
            .props
            .insert("assign", Value::native("location.replace"));

        // document with body element.
        let body = heap.alloc_native("element:body");
        heap.get_mut(body).props.insert(
            "appendChild",
            Value::native("element.appendChild"),
        );
        let document = heap.alloc_native("document");
        {
            let doc = heap.get_mut(document);
            doc.props
                .insert("write", Value::native("document.write"));
            doc.props.insert(
                "writeln",
                Value::native("document.write"),
            );
            doc.props.insert(
                "createElement",
                Value::native("document.createElement"),
            );
            doc.props.insert(
                "getElementById",
                Value::native("document.getElementById"),
            );
            doc.props.insert("body", Value::Obj(body));
            doc.props
                .insert("location", Value::Obj(location));
            doc.props.insert("referrer", Value::str(""));
            doc.props.insert("cookie", Value::str(""));
            doc.props
                .insert("domain", Value::str(
                    frame_url.host().map(|h| h.to_string()).unwrap_or_default(),
                ));
        }

        // top (SOP: opaque; only location assignment is allowed).
        let top = heap.alloc_native("top");

        // window (also the global alias `self`).
        let window = heap.alloc_native("window");
        {
            let w = heap.get_mut(window);
            w.props
                .insert("location", Value::Obj(location));
            w.props
                .insert("document", Value::Obj(document));
            w.props
                .insert("navigator", Value::Obj(navigator));
            w.props.insert("screen", Value::Obj(screen));
            w.props.insert("top", Value::Obj(top));
            w.props.insert(
                "setTimeout",
                Value::native("window.setTimeout"),
            );
        }

        interp.set_global("window", Value::Obj(window));
        interp.set_global("self", Value::Obj(window));
        interp.set_global("document", Value::Obj(document));
        interp.set_global("navigator", Value::Obj(navigator));
        interp.set_global("location", Value::Obj(location));
        interp.set_global("screen", Value::Obj(screen));
        interp.set_global("top", Value::Obj(top));
        interp.set_global("setTimeout", Value::native("window.setTimeout"));
        interp.set_global("setInterval", Value::native("window.setTimeout"));
        interp.set_global("clearTimeout", Value::native("window.noop"));
        interp.set_global("alert", Value::native("window.noop"));
        interp.set_global("console_log", Value::native("window.noop"));
    }

    fn value_to_string(heap: &Heap, v: &Value) -> String {
        match v {
            Value::Str(s) => s.to_string(),
            Value::Num(n) => malvert_adscript::value::number_to_string(*n),
            Value::Bool(b) => b.to_string(),
            Value::Undefined => "undefined".to_string(),
            Value::Null => "null".to_string(),
            Value::Obj(id) => {
                let data = heap.get(*id);
                data.props
                    .get("href")
                    .map(|href| Self::value_to_string(heap, href))
                    .unwrap_or_else(|| "[object]".to_string())
            }
            _ => "function".to_string(),
        }
    }
}

impl Host for BrowserHost {
    fn call(
        &mut self,
        heap: &mut Heap,
        name: &str,
        _this: Option<ObjId>,
        args: &[Value],
    ) -> Result<Value, String> {
        match name {
            "document.write" => {
                let markup = args
                    .iter()
                    .map(|a| Self::value_to_string(heap, a))
                    .collect::<String>();
                self.effects.push(Effect::Write(markup));
                Ok(Value::Undefined)
            }
            "document.createElement" => {
                let tag = args
                    .first()
                    .map(|a| Self::value_to_string(heap, a))
                    .unwrap_or_default()
                    .to_ascii_lowercase();
                let el = heap.alloc_native("element");
                heap.get_mut(el)
                    .props
                    .insert("tagName", Value::str(&tag));
                heap.get_mut(el).props.insert(
                    "appendChild",
                    Value::native("element.appendChild"),
                );
                Ok(Value::Obj(el))
            }
            "document.getElementById" => Ok(Value::Null),
            "element.appendChild" => {
                if let Some(Value::Obj(el)) = args.first() {
                    let data = heap.get(*el);
                    let tag = data
                        .props
                        .get("tagName")
                        .map(|v| Self::value_to_string(heap, v))
                        .unwrap_or_default();
                    if tag == "iframe" {
                        let src = data
                            .props
                            .get("src")
                            .map(|v| Self::value_to_string(heap, v))
                            .unwrap_or_default();
                        let width = data
                            .props
                            .get("width")
                            .map(|v| v.to_number())
                            .filter(|n| n.is_finite() && *n >= 0.0)
                            .unwrap_or(300.0);
                        let height = data
                            .props
                            .get("height")
                            .map(|v| v.to_number())
                            .filter(|n| n.is_finite() && *n >= 0.0)
                            .unwrap_or(250.0);
                        if !src.is_empty() {
                            self.effects.push(Effect::InjectIframe {
                                src,
                                area: (width as u64).saturating_mul(height as u64),
                            });
                        }
                    }
                }
                Ok(args.first().cloned().unwrap_or(Value::Undefined))
            }
            "window.setTimeout" => {
                let callback = args.first().cloned().unwrap_or(Value::Undefined);
                let delay_ms = args.get(1).map(|v| v.to_number()).unwrap_or(0.0);
                if matches!(callback, Value::Fn { .. } | Value::Native(_)) {
                    self.timers.push(ScheduledTimer { callback, delay_ms });
                }
                let id = self.next_timer_id;
                self.next_timer_id += 1.0;
                Ok(Value::Num(id))
            }
            "location.replace" => {
                // Called as location.replace(url) — possibly with the
                // receiver string prepended for primitive receivers; take
                // the last string argument as the target.
                let target = args
                    .iter()
                    .rev()
                    .find_map(|a| match a {
                        Value::Str(s) => Some(s.to_string()),
                        _ => None,
                    })
                    .unwrap_or_default();
                if !target.is_empty() {
                    self.effects.push(Effect::Navigate { target });
                }
                Ok(Value::Undefined)
            }
            "window.noop" => Ok(Value::Undefined),
            other => Err(format!("{other} is not implemented")),
        }
    }

    fn get_prop(&mut self, _heap: &mut Heap, tag: &str, _obj: ObjId, key: &str) -> Option<Value> {
        match (tag, key) {
            ("navigator", "plugins") => {
                self.plugins_enumerated = true;
                None // fall through to the stored array
            }
            ("top", "location") => {
                // SOP: a cross-origin frame cannot *read* the top location;
                // browsers return an opaque object. We return a string the
                // script cannot do much with — writing is handled in
                // set_prop.
                Some(Value::str("about:blank"))
            }
            _ => None,
        }
    }

    fn set_prop(
        &mut self,
        heap: &mut Heap,
        tag: &str,
        _obj: ObjId,
        key: &str,
        value: &Value,
    ) -> bool {
        match (tag, key) {
            ("window", "location") | ("document", "location") => {
                self.effects.push(Effect::Navigate {
                    target: Self::value_to_string(heap, value),
                });
                true
            }
            ("location", "href") => {
                self.effects.push(Effect::Navigate {
                    target: Self::value_to_string(heap, value),
                });
                true
            }
            ("top", "location") => {
                self.effects.push(Effect::NavigateTop {
                    target: Self::value_to_string(heap, value),
                });
                true
            }
            ("image", "src") => {
                self.effects.push(Effect::Beacon {
                    target: Self::value_to_string(heap, value),
                });
                true
            }
            ("document", "cookie") => {
                self.effects.push(Effect::SetCookie {
                    pair: Self::value_to_string(heap, value),
                });
                true
            }
            _ => false,
        }
    }

    fn construct(&mut self, heap: &mut Heap, name: &str, _args: &[Value]) -> Option<Value> {
        match name {
            "Image" => {
                let img = heap.alloc_native("image");
                Some(Value::Obj(img))
            }
            "Date" => {
                // A fixed-epoch Date stub: enough for cache-busting tricks.
                let date = heap.alloc_native("date");
                heap.get_mut(date).props.insert(
                    "getTime",
                    Value::native("window.noop"),
                );
                Some(Value::Obj(date))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_adscript::{Interpreter, Limits};

    fn run_with_host(src: &str) -> (Interpreter<BrowserHost>, Result<(), String>) {
        let url = Url::parse("http://ads.example.com/creative").unwrap();
        let personality = Personality::vulnerable_victim();
        let host = BrowserHost::new(personality.clone(), url.clone());
        let mut interp = Interpreter::new(host, Limits::default(), 7);
        BrowserHost::install_globals(&mut interp, &personality, &url);
        let result = interp.run(src).map(|_| ()).map_err(|e| e.to_string());
        (interp, result)
    }

    #[test]
    fn document_write_recorded() {
        let (mut interp, r) = run_with_host("document.write('<b>x</b>');");
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(matches!(&effects[0], Effect::Write(s) if s == "<b>x</b>"));
    }

    #[test]
    fn plugin_enumeration_flagged() {
        let (mut interp, r) = run_with_host(
            "var found = ''; for (var i = 0; i < navigator.plugins.length; i++) { \
             found += navigator.plugins[i].name + ';'; }",
        );
        r.unwrap();
        assert!(interp.host.plugins_enumerated);
        let found = interp.get_global("found").cloned().unwrap();
        let s = interp.display_value(&found);
        assert!(s.contains("Flash"));
        assert!(s.contains("Java"));
        interp.host.take_effects();
    }

    #[test]
    fn window_location_navigation() {
        let (mut interp, r) = run_with_host("window.location = 'http://next.com/';");
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(matches!(&effects[0], Effect::Navigate { target } if target == "http://next.com/"));
    }

    #[test]
    fn location_href_navigation() {
        let (mut interp, r) = run_with_host("location.href = 'http://href.com/';");
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(matches!(&effects[0], Effect::Navigate { target } if target == "http://href.com/"));
    }

    #[test]
    fn top_location_hijack() {
        let (mut interp, r) = run_with_host("top.location = 'http://scam.biz/lp';");
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(
            matches!(&effects[0], Effect::NavigateTop { target } if target == "http://scam.biz/lp")
        );
    }

    #[test]
    fn top_location_read_is_opaque() {
        let (interp, r) = run_with_host("var t = top.location;");
        r.unwrap();
        let v = interp.get_global("t").cloned().unwrap();
        assert_eq!(interp.display_value(&v), "about:blank");
    }

    #[test]
    fn iframe_injection_via_create_append() {
        let (mut interp, r) = run_with_host(
            "var fr = document.createElement('iframe'); fr.width = 1; fr.height = 1; \
             fr.src = 'http://exploit.biz/gate'; document.body.appendChild(fr);",
        );
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(matches!(
            &effects[0],
            Effect::InjectIframe { src, area } if src == "http://exploit.biz/gate" && *area == 1
        ));
    }

    #[test]
    fn appendchild_non_iframe_no_effect() {
        let (mut interp, r) = run_with_host(
            "var d = document.createElement('div'); document.body.appendChild(d);",
        );
        r.unwrap();
        assert!(interp.host.take_effects().is_empty());
    }

    #[test]
    fn set_timeout_schedules() {
        let (mut interp, r) =
            run_with_host("function f() { } setTimeout(f, 500); setTimeout('junk', 10);");
        r.unwrap();
        let timers = interp.host.take_timers();
        // Only the function callback is kept; string timeouts are dropped
        // (our creatives don't use them).
        assert_eq!(timers.len(), 1);
        assert_eq!(timers[0].delay_ms, 500.0);
    }

    #[test]
    fn image_beacon() {
        let (mut interp, r) =
            run_with_host("var i = new Image(); i.src = 'http://track.com/p?x=1';");
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(
            matches!(&effects[0], Effect::Beacon { target } if target == "http://track.com/p?x=1")
        );
    }

    #[test]
    fn location_replace_call() {
        let (mut interp, r) = run_with_host("location.replace('http://swap.com/');");
        r.unwrap();
        let effects = interp.host.take_effects();
        assert!(matches!(&effects[0], Effect::Navigate { target } if target == "http://swap.com/"));
    }

    #[test]
    fn analysis_tells_visible_to_cloaking() {
        let url = Url::parse("http://ads.example.com/c").unwrap();
        let personality = Personality::detectable_analyst();
        let host = BrowserHost::new(personality.clone(), url.clone());
        let mut interp = Interpreter::new(host, Limits::default(), 7);
        BrowserHost::install_globals(&mut interp, &personality, &url);
        interp
            .run("var spotted = navigator.analysisTells > 0;")
            .unwrap();
        let v = interp.get_global("spotted").cloned().unwrap();
        assert!(v.truthy());
    }

    #[test]
    fn driveby_probe_full_flow() {
        // The actual probe pattern the creatives use.
        let (mut interp, r) = run_with_host(
            "var vulnerable = false; var plugins = navigator.plugins; \
             for (var i = 0; i < plugins.length; i++) { var p = plugins[i]; \
               if (p.name.indexOf('Flash') >= 0 && parseFloat(p.version) < 11.8) { vulnerable = true; } } \
             if (vulnerable) { var fr = document.createElement('iframe'); \
               fr.width = 1; fr.height = 1; fr.src = 'http://kit.biz/gate'; \
               document.body.appendChild(fr); }",
        );
        r.unwrap();
        assert!(interp.host.plugins_enumerated);
        let effects = interp.host.take_effects();
        assert_eq!(effects.len(), 1);
        assert!(matches!(&effects[0], Effect::InjectIframe { .. }));
    }
}
