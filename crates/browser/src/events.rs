//! Behaviour events the honeyclient records.

use bytes::Bytes;
use malvert_types::Url;

/// A forced/triggered file download observed during a page load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Download {
    /// URL the bytes came from.
    pub url: Url,
    /// `Content-Disposition` filename, when the server set one.
    pub filename: Option<String>,
    /// The downloaded bytes (fed to the multi-engine scanner).
    pub bytes: Bytes,
}

/// One observed behaviour during a page load. The oracle's heuristics and
/// models consume this stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BehaviorEvent {
    /// A script wrote markup into its document.
    DocumentWrite {
        /// URL of the frame whose document was written.
        frame: Url,
        /// Number of bytes written.
        bytes: usize,
    },
    /// A script read `navigator.plugins` — the fingerprinting/probing step
    /// of drive-by kits.
    PluginEnumeration {
        /// Frame performing the probe.
        frame: Url,
    },
    /// A script navigated its own frame (`window.location = …`).
    FrameNavigation {
        /// Frame that navigated.
        frame: Url,
        /// Where it went.
        target: String,
    },
    /// A script in a subframe assigned `top.location` — link hijacking
    /// (§2.3): an ad dragging the whole page somewhere else.
    TopLocationHijack {
        /// The (ad) frame that did it.
        frame: Url,
        /// Where the page was dragged.
        target: String,
    },
    /// A sandboxed frame attempted a `top.location` hijack and the browser
    /// blocked it (HTML5 `sandbox` without `allow-top-navigation`) — the
    /// §4.4/§5.2 defence doing its job.
    SandboxedHijackBlocked {
        /// The sandboxed (ad) frame.
        frame: Url,
        /// Where it tried to drag the page.
        target: String,
    },
    /// A script created and attached a new iframe.
    IframeInjection {
        /// Frame doing the injecting.
        frame: Url,
        /// The injected frame's source URL.
        src: String,
        /// Injected frame area in px² (1×1 pixels are a drive-by tell).
        area: u64,
    },
    /// A script scheduled a `setTimeout` callback.
    TimerScheduled {
        /// Frame scheduling it.
        frame: Url,
    },
    /// An image beacon fired (`new Image().src = …`).
    Beacon {
        /// Frame firing it.
        frame: Url,
        /// Beacon URL.
        target: String,
    },
    /// A file download was triggered.
    DownloadTriggered {
        /// Frame that triggered it.
        frame: Url,
        /// Download URL.
        url: Url,
    },
    /// A script failed (parse error, runtime error, budget exhaustion).
    /// Wepawet logs these too — errors on heavily obfuscated scripts are
    /// themselves a weak signal.
    ScriptError {
        /// Frame the script ran in.
        frame: Url,
        /// Error description.
        message: String,
    },
}

impl BehaviorEvent {
    /// The frame URL the event belongs to.
    pub fn frame(&self) -> &Url {
        match self {
            BehaviorEvent::DocumentWrite { frame, .. }
            | BehaviorEvent::PluginEnumeration { frame }
            | BehaviorEvent::FrameNavigation { frame, .. }
            | BehaviorEvent::TopLocationHijack { frame, .. }
            | BehaviorEvent::SandboxedHijackBlocked { frame, .. }
            | BehaviorEvent::IframeInjection { frame, .. }
            | BehaviorEvent::TimerScheduled { frame }
            | BehaviorEvent::Beacon { frame, .. }
            | BehaviorEvent::DownloadTriggered { frame, .. }
            | BehaviorEvent::ScriptError { frame, .. } => frame,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_accessor_covers_all_variants() {
        let u = Url::parse("http://a.com/x").unwrap();
        let events = vec![
            BehaviorEvent::DocumentWrite {
                frame: u.clone(),
                bytes: 10,
            },
            BehaviorEvent::PluginEnumeration { frame: u.clone() },
            BehaviorEvent::FrameNavigation {
                frame: u.clone(),
                target: "http://b.com/".into(),
            },
            BehaviorEvent::TopLocationHijack {
                frame: u.clone(),
                target: "http://evil.com/".into(),
            },
            BehaviorEvent::IframeInjection {
                frame: u.clone(),
                src: "http://c.com/".into(),
                area: 1,
            },
            BehaviorEvent::TimerScheduled { frame: u.clone() },
            BehaviorEvent::Beacon {
                frame: u.clone(),
                target: "http://d.com/p".into(),
            },
            BehaviorEvent::DownloadTriggered {
                frame: u.clone(),
                url: Url::parse("http://e.com/f.exe").unwrap(),
            },
            BehaviorEvent::ScriptError {
                frame: u.clone(),
                message: "boom".into(),
            },
        ];
        for e in events {
            assert_eq!(e.frame(), &u);
        }
    }
}
