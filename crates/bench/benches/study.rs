//! End-to-end study throughput: the pipelined crawl + classify engine on
//! two corpus scales, plus the checkpointed variant (snapshot writes at
//! every shard boundary) to pin the checkpoint overhead. The same
//! workloads `malvert bench-json --study-out` times into
//! `BENCH_study.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use malvert_core::study::{Study, StudyConfig};
use malvert_trace::MetricsRegistry;
use malvert_types::CrawlSchedule;
use malvert_websim::WebConfig;
use std::hint::black_box;

/// The two corpus scales the study group times, mirroring
/// `malvert bench-json --study-out`.
fn workload(top: u32, bottom: u32, random: u32, feed: u32) -> StudyConfig {
    StudyConfig {
        seed: 2014,
        web: WebConfig {
            ranking_universe: 10_000,
            top_slice: top,
            bottom_slice: bottom,
            random_slice: random,
            security_feed: feed,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: malvert_crawler::CrawlConfig {
            schedule: CrawlSchedule::scaled(4, 2),
            workers: 8,
            ..Default::default()
        },
        ..StudyConfig::default()
    }
}

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group.sample_size(10);

    for (name, config) in [
        ("default", workload(30, 30, 50, 20)),
        ("scaled", workload(60, 60, 100, 40)),
    ] {
        // The world is built once; the benchmark times the pipeline itself
        // (crawl + classify), which is what the engine accelerates.
        let study = Study::builder()
            .config(config)
            .build()
            .expect("no resume requested");
        let loads =
            study.config.web.total_sites() as u64 * study.config.crawl.schedule.loads_per_site();
        group.throughput(Throughput::Elements(loads));
        group.bench_function(name, |b| b.iter(|| black_box(study.run())));
    }

    // The metered variant: same default workload with the run-health
    // registry live, so the gap to `default` bounds the metrics overhead
    // (the <2% acceptance bar for the observability layer).
    let study = Study::builder()
        .config(workload(30, 30, 50, 20))
        .metrics(MetricsRegistry::new())
        .build()
        .expect("no resume requested");
    let loads =
        study.config.web.total_sites() as u64 * study.config.crawl.schedule.loads_per_site();
    group.throughput(Throughput::Elements(loads));
    group.bench_function("default_metered", |b| b.iter(|| black_box(study.run())));

    // Checkpointing at every shard boundary: the worst-case snapshot
    // cadence, so the measured gap to `default` bounds the overhead.
    let dir = std::env::temp_dir().join(format!("malvert-bench-study-{}", std::process::id()));
    let study = Study::builder()
        .config(workload(30, 30, 50, 20))
        .checkpoint(&dir)
        .shard_size(256)
        .build()
        .expect("no resume requested");
    let loads =
        study.config.web.total_sites() as u64 * study.config.crawl.schedule.loads_per_site();
    group.throughput(Throughput::Elements(loads));
    group.bench_function("default_checkpointed", |b| {
        b.iter(|| black_box(study.run()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
