//! Regenerates **Table 1 and Figures 1–5** (plus the §4.2 cluster split and
//! the §4.4 sandbox census) and times each analysis over the bench-scale
//! study.
//!
//! The rendered blocks print once at startup; Criterion then times the
//! analysis functions themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use malvert_bench::shared_study;
use malvert_core::{analysis, report};
use std::hint::black_box;

fn print_all_reports() {
    let (study, results) = shared_study();
    let summary = results.summary();
    println!("\n================ regenerated paper artefacts ================\n");
    println!(
        "corpus: {} unique ads / {} observations / {} page loads\n",
        summary.unique_ads, summary.observations, summary.page_loads
    );
    println!("{}", report::render_table1(&analysis::table1(results)));
    println!(
        "{}",
        report::render_fig1(&analysis::fig1_network_ratios(results, &study.world))
    );
    println!(
        "{}",
        report::render_fig2(&analysis::fig2_network_volume(results, &study.world))
    );
    println!(
        "{}",
        report::render_cluster_split(&analysis::cluster_split(results, &study.world))
    );
    println!(
        "{}",
        report::render_fig3(&analysis::fig3_categories(results, &study.world))
    );
    let (fig4, generic) = analysis::fig4_tlds(results, &study.world);
    println!("{}", report::render_fig4(&fig4, generic));
    println!("{}", report::render_fig5(&analysis::fig5_chains(results)));
    println!(
        "{}",
        report::render_sandbox(&analysis::sandbox_usage(results))
    );
    println!("{}", report::render_run_metrics(&summary));
    println!("==============================================================\n");
}

fn bench_analyses(c: &mut Criterion) {
    print_all_reports();
    let (study, results) = shared_study();

    c.bench_function("analysis/table1", |b| {
        b.iter(|| black_box(analysis::table1(results)))
    });
    c.bench_function("analysis/fig1_network_ratios", |b| {
        b.iter(|| black_box(analysis::fig1_network_ratios(results, &study.world)))
    });
    c.bench_function("analysis/fig2_network_volume", |b| {
        b.iter(|| black_box(analysis::fig2_network_volume(results, &study.world)))
    });
    c.bench_function("analysis/cluster_split", |b| {
        b.iter(|| black_box(analysis::cluster_split(results, &study.world)))
    });
    c.bench_function("analysis/fig3_categories", |b| {
        b.iter(|| black_box(analysis::fig3_categories(results, &study.world)))
    });
    c.bench_function("analysis/fig4_tlds", |b| {
        b.iter(|| black_box(analysis::fig4_tlds(results, &study.world)))
    });
    c.bench_function("analysis/fig5_chains", |b| {
        b.iter(|| black_box(analysis::fig5_chains(results)))
    });
    c.bench_function("analysis/sandbox_usage", |b| {
        b.iter(|| black_box(analysis::sandbox_usage(results)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analyses
}
criterion_main!(benches);
