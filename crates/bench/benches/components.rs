//! Component ablations — the design-choice benchmarks called out in
//! DESIGN.md:
//!
//! * EasyList matcher throughput (URL matches/sec) — the crawler's hot loop.
//! * AdScript interpreter throughput on obfuscated creatives — the
//!   honeyclient's hot loop.
//! * Blacklist threshold sweep (1..10 lists): precision/recall of the
//!   aggregate vs ground truth — why the paper chose ">5".
//! * Scanner consensus sweep (1..12 engines): detection vs FP trade-off.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use malvert_adscript::{Interpreter, Limits, NoHost};
use malvert_bench::shared_study;
use malvert_bench::synth::{synthetic_context, synthetic_list, synthetic_urls};
use malvert_blacklist::{BlacklistService, DomainTruth};
use malvert_filterlist::{FilterSet, MatchScratch, RequestContext};
use malvert_scanner::{MalwareFamily, Payload, PayloadKind, ScanService};
use malvert_types::rng::SeedTree;
use malvert_types::{DetRng, DomainName, Url};
use std::hint::black_box;

/// Prints the bench-scale pipeline counters from the typed [`RunSummary`]
/// so the component sweeps below can be read against real study volumes
/// (how many feed lookups / oracle executions one run actually performs)
/// instead of re-deriving them ad hoc.
fn print_pipeline_counters() {
    let (_, results) = shared_study();
    let c = results.summary().counters;
    println!("\n== bench-scale pipeline volumes (from RunSummary counters) ==");
    println!(
        "{:>14} page loads\n{:>14} ads observed\n{:>14} unique ads\n{:>14} oracle executions\n{:>14} feed lookups\n{:>14} script budgets exhausted",
        c.page_loads,
        c.ads_observed,
        c.unique_ads,
        c.oracle_executions,
        c.feed_lookups,
        c.script_budgets_exhausted
    );
}

fn bench_filterlist(c: &mut Criterion) {
    // A list shaped like the generated SimEasyList: 40 domain anchors plus
    // pattern rules.
    let mut list = String::from("[Adblock Plus 2.0]\n");
    for i in 0..40 {
        list.push_str(&format!("||srv{i}.network{i}.com^\n"));
    }
    list.push_str("/serve?pub=$subdocument\n/banner/\n@@||srv0.network0.com/ok/\n");
    let set = FilterSet::parse(&list);
    let ctx = RequestContext::iframe_from(&DomainName::parse("publisher.com").unwrap());

    let urls: Vec<Url> = (0..200)
        .map(|i| {
            Url::parse(&format!(
                "http://srv{}.network{}.com/serve?pub={}&slot={}",
                i % 50,
                i % 50,
                i,
                i % 6
            ))
            .unwrap()
        })
        .collect();

    let mut group = c.benchmark_group("filterlist");
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.bench_function("match_200_urls", |b| {
        b.iter(|| {
            let hits = urls.iter().filter(|u| set.is_ad_url(u, &ctx)).count();
            black_box(hits)
        })
    });
    group.finish();
}

/// Indexed-vs-naive matcher comparison on the shared synthetic workloads
/// (the same ones `malvert bench-json` times). The indexed path reuses one
/// [`MatchScratch`] the way the crawler's per-worker engine does.
fn bench_filterlist_index(c: &mut Criterion) {
    for rules in [100usize, 1_000, 10_000] {
        let set = FilterSet::parse(&synthetic_list(rules, 0xF117));
        let urls = synthetic_urls(200, rules, 0xF117 + 1);
        let ctx = synthetic_context();

        let mut group = c.benchmark_group(format!("filterlist_index/{rules}_rules"));
        group.throughput(Throughput::Elements(urls.len() as u64));
        group.bench_function("indexed", |b| {
            let mut scratch = MatchScratch::default();
            b.iter(|| {
                let hits = urls
                    .iter()
                    .filter(|u| set.matches_with(u, &ctx, &mut scratch).is_ad())
                    .count();
                black_box(hits)
            })
        });
        group.bench_function("naive", |b| {
            b.iter(|| {
                let hits = urls
                    .iter()
                    .filter(|u| set.matches_naive(u, &ctx).is_ad())
                    .count();
                black_box(hits)
            })
        });
        group.finish();
    }
}

fn bench_adscript(c: &mut Criterion) {
    // The honeyclient's hot loop: running an obfuscated creative.
    let core = "var s = ''; for (var i = 0; i < 200; i++) { s += String.fromCharCode(65 + (i % 26)); } out = s.length;";
    let mut rng = DetRng::new(5);
    let single = malvert_adnet::creative::obfuscate(core, 1, &mut rng);
    let double = malvert_adnet::creative::obfuscate(core, 2, &mut rng);

    let mut group = c.benchmark_group("adscript");
    group.bench_function("plain_loop_script", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            black_box(interp.run(core).unwrap());
        })
    });
    group.bench_function("one_obfuscation_layer", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            black_box(interp.run(&single).unwrap());
        })
    });
    group.bench_function("two_obfuscation_layers", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            black_box(interp.run(&double).unwrap());
        })
    });
    group.finish();
}

fn sweep_blacklist_threshold() {
    println!("\n== blacklist threshold sweep (ablation for the paper's '>5 lists' rule) ==");
    println!(
        "{:>10}{:>8}{:>8}{:>8}{:>12}{:>9}",
        "threshold", "tp", "fp", "fn", "precision", "recall"
    );
    for threshold in 1..=10usize {
        let mut svc = BlacklistService::with_threshold(SeedTree::new(42), threshold);
        for i in 0..400u32 {
            svc.register(
                DomainName::parse(&format!("mal-{i}.biz")).unwrap(),
                DomainTruth::Malicious {
                    active_from: i % 60,
                },
            );
            svc.register(
                DomainName::parse(&format!("ok-{i}.com")).unwrap(),
                DomainTruth::Benign,
            );
        }
        let q = svc.evaluate(90);
        println!(
            "{threshold:>10}{:>8}{:>8}{:>8}{:>12.4}{:>9.3}",
            q.tp,
            q.fp,
            q.fn_,
            q.precision(),
            q.recall()
        );
    }
}

fn sweep_scanner_consensus() {
    println!("\n== scanner consensus sweep (engines required for a malware verdict) ==");
    println!(
        "{:>10}{:>14}{:>14}",
        "consensus", "mal detected", "benign flagged"
    );
    let tree = SeedTree::new(77);
    let samples_mal: Vec<_> = (0u32..40)
        .map(|i| {
            Payload::malicious(
                PayloadKind::Executable,
                MalwareFamily(i % 24),
                i % 3 == 0,
                tree.branch_idx(u64::from(i)),
            )
        })
        .collect();
    let samples_benign: Vec<_> = (0u32..40)
        .map(|i| Payload::benign(PayloadKind::Executable, tree.branch_idx(1000 + u64::from(i))))
        .collect();
    for consensus in [1usize, 2, 4, 8, 12] {
        let svc = ScanService::with_consensus(SeedTree::new(7), consensus);
        let detected = samples_mal
            .iter()
            .filter(|p| svc.is_malicious(&p.bytes))
            .count();
        let flagged = samples_benign
            .iter()
            .filter(|p| svc.is_malicious(&p.bytes))
            .count();
        println!("{consensus:>10}{detected:>11}/40{flagged:>11}/40");
    }
}

fn bench_blacklist_and_scanner(c: &mut Criterion) {
    print_pipeline_counters();
    sweep_blacklist_threshold();
    sweep_scanner_consensus();

    // Timing: one aggregate lookup, one 51-engine scan.
    let mut svc = BlacklistService::new(SeedTree::new(1));
    let d = DomainName::parse("exploit-zone.biz").unwrap();
    svc.register(d.clone(), DomainTruth::Malicious { active_from: 0 });
    c.bench_function("blacklist/aggregate_lookup", |b| {
        b.iter(|| black_box(svc.listing_count(&d, 45)))
    });

    let scan = ScanService::new(SeedTree::new(2));
    let payload = Payload::malicious(
        PayloadKind::Executable,
        MalwareFamily(3),
        true,
        SeedTree::new(3),
    );
    c.bench_function("scanner/scan_51_engines", |b| {
        b.iter(|| black_box(scan.scan(&payload.bytes)))
    });
}

criterion_group!(
    benches,
    bench_filterlist,
    bench_filterlist_index,
    bench_adscript,
    bench_blacklist_and_scanner
);
criterion_main!(benches);
