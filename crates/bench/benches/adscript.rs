//! Script engine benchmarks — the `adscript_compile` and `adscript_exec`
//! groups.
//!
//! `adscript_compile` runs three variants over the same deterministic
//! [`synth::synthetic_scripts`] workload (the one `malvert bench-json`
//! also times):
//!
//! * `cold` — compile (lex + parse + resolve) and execute every script on
//!   every pass, the way the interpreter worked before the cache existed.
//! * `warm` — compile through a pre-warmed shared [`ScriptCache`], the way
//!   crawler workers see repeat creatives: the front end is a hash lookup.
//! * `interned` — execute pre-compiled [`CompiledScript`]s only, isolating
//!   the interned-symbol / slot-resolved execution floor the warm path
//!   converges to.
//!
//! The workload is parse-heavy by construction (dozens of helper function
//! declarations in front of a short live path), so `warm` should beat
//! `cold` by well over the 5x the acceptance bar asks for.
//!
//! `adscript_exec` times pure execution of pre-compiled programs on the
//! execution-heavy [`synth::synthetic_exec_scripts`] packed-creative
//! workload, once per engine:
//!
//! * `tree_walk` — the retained AST interpreter, the differential oracle.
//! * `vm` — the bytecode VM with its pre-charge folding, fused
//!   superinstructions, and shape-keyed monomorphic inline caches.
//!
//! Both engines execute the identical [`CompiledScript`]s (asserted to
//! produce identical output before timing), so the ratio is the dispatch
//! and data-layout win alone, uncontaminated by front-end cost.
//!
//! `tree_walk_poly` / `vm_poly` repeat the comparison on the
//! shape-polymorphic [`synth::synthetic_exec_scripts_poly`] workload (same
//! property names, rotated insertion orders), which defeats the VM's
//! monomorphic `(shape, slot)` caches at every access site and bounds how
//! much of the speedup depends on monomorphic traffic.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use malvert_adscript::{
    CompiledScript, Interpreter, Limits, NoHost, ScriptCache, ScriptEngine, ScriptStats,
};
use malvert_bench::synth::{
    synthetic_exec_scripts, synthetic_exec_scripts_poly, synthetic_scripts,
};
use std::hint::black_box;

const SCRIPTS: usize = 32;
const SEED: u64 = 0xADC0;
const EXEC_SCRIPTS: usize = 8;
const EXEC_SEED: u64 = 0xE8EC;

fn bench_adscript_compile(c: &mut Criterion) {
    let scripts = synthetic_scripts(SCRIPTS, SEED);
    let compiled: Vec<CompiledScript> = scripts
        .iter()
        .map(|s| CompiledScript::compile(s).expect("synthetic script compiles"))
        .collect();
    let cache = ScriptCache::new(4096, ScriptStats::new());
    for s in &scripts {
        cache.compile(s).expect("synthetic script compiles");
    }

    let mut group = c.benchmark_group("adscript_compile");
    group.throughput(Throughput::Elements(scripts.len() as u64));
    group.bench_function("cold", |b| {
        b.iter(|| {
            for src in &scripts {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                black_box(interp.run(src).unwrap());
            }
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            for src in &scripts {
                let script = cache.compile(src).unwrap();
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                black_box(interp.run_program(&script).unwrap());
            }
        })
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            for script in &compiled {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                black_box(interp.run_program(script).unwrap());
            }
        })
    });
    group.finish();
}

fn compile_checked(scripts: &[String], what: &str) -> Vec<CompiledScript> {
    let compiled: Vec<CompiledScript> = scripts
        .iter()
        .map(|s| {
            CompiledScript::compile(s).unwrap_or_else(|e| panic!("{what} script compiles: {e}"))
        })
        .collect();
    // Engines must agree before their ratio means anything.
    for (i, script) in compiled.iter().enumerate() {
        let run = |engine: ScriptEngine| {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            interp.set_engine(engine);
            interp
                .run_program(script)
                .unwrap_or_else(|e| panic!("{what} script runs: {e}"));
            interp
                .get_global("out")
                .unwrap_or_else(|| panic!("{what} script writes out"))
                .clone()
        };
        assert!(
            run(ScriptEngine::TreeWalk).strict_eq(&run(ScriptEngine::Vm)),
            "engine divergence on {what} script {i}"
        );
    }
    compiled
}

fn bench_adscript_exec(c: &mut Criterion) {
    let mono = compile_checked(&synthetic_exec_scripts(EXEC_SCRIPTS, EXEC_SEED), "exec");
    let poly = compile_checked(
        &synthetic_exec_scripts_poly(EXEC_SCRIPTS, EXEC_SEED),
        "poly exec",
    );

    let mut group = c.benchmark_group("adscript_exec");
    group.throughput(Throughput::Elements(mono.len() as u64));
    for (name, engine, compiled) in [
        ("tree_walk", ScriptEngine::TreeWalk, &mono),
        ("vm", ScriptEngine::Vm, &mono),
        ("tree_walk_poly", ScriptEngine::TreeWalk, &poly),
        ("vm_poly", ScriptEngine::Vm, &poly),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for script in compiled {
                    let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                    interp.set_engine(engine);
                    black_box(interp.run_program(script).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adscript_compile, bench_adscript_exec);
criterion_main!(benches);
