//! Script compilation cache benchmarks — the `adscript_compile` group.
//!
//! Three variants over the same deterministic [`synth::synthetic_scripts`]
//! workload (the one `malvert bench-json` also times):
//!
//! * `cold` — compile (lex + parse + resolve) and execute every script on
//!   every pass, the way the interpreter worked before the cache existed.
//! * `warm` — compile through a pre-warmed shared [`ScriptCache`], the way
//!   crawler workers see repeat creatives: the front end is a hash lookup.
//! * `interned` — execute pre-compiled [`CompiledScript`]s only, isolating
//!   the interned-symbol / slot-resolved execution floor the warm path
//!   converges to.
//!
//! The workload is parse-heavy by construction (dozens of helper function
//! declarations in front of a short live path), so `warm` should beat
//! `cold` by well over the 5x the acceptance bar asks for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use malvert_adscript::{CompiledScript, Interpreter, Limits, NoHost, ScriptCache, ScriptStats};
use malvert_bench::synth::synthetic_scripts;
use std::hint::black_box;

const SCRIPTS: usize = 32;
const SEED: u64 = 0xADC0;

fn bench_adscript_compile(c: &mut Criterion) {
    let scripts = synthetic_scripts(SCRIPTS, SEED);
    let compiled: Vec<CompiledScript> = scripts
        .iter()
        .map(|s| CompiledScript::compile(s).expect("synthetic script compiles"))
        .collect();
    let cache = ScriptCache::new(4096, ScriptStats::new());
    for s in &scripts {
        cache.compile(s).expect("synthetic script compiles");
    }

    let mut group = c.benchmark_group("adscript_compile");
    group.throughput(Throughput::Elements(scripts.len() as u64));
    group.bench_function("cold", |b| {
        b.iter(|| {
            for src in &scripts {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                black_box(interp.run(src).unwrap());
            }
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            for src in &scripts {
                let script = cache.compile(src).unwrap();
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                black_box(interp.run_program(&script).unwrap());
            }
        })
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            for script in &compiled {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                black_box(interp.run_program(script).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_adscript_compile);
criterion_main!(benches);
