//! §5 countermeasure ablation: baseline vs shared rejection blacklist vs
//! sandbox adoption, at bench scale. Prints the comparison table and times a
//! world rebuild.

use criterion::{criterion_group, criterion_main, Criterion};
use malvert_bench::bench_config;
use malvert_core::countermeasures::{evaluate, Countermeasure};
use malvert_core::study::Study;
use std::hint::black_box;

fn run_ablation() {
    let config = bench_config(99);
    println!("\n== countermeasure ablation (s5) ==");
    println!(
        "{:<34}{:>9}{:>10}{:>15}{:>17}",
        "configuration", "corpus", "detected", "mal delivered", "mal impressions"
    );
    for cm in [
        Countermeasure::None,
        Countermeasure::SharedBlacklist {
            sharing_floor_percent: 50,
        },
        Countermeasure::SharedBlacklist {
            sharing_floor_percent: 90,
        },
        Countermeasure::SandboxAdoption { percent: 100 },
    ] {
        let o = evaluate(&config, cm);
        println!(
            "{:<34}{:>9}{:>10}{:>15}{:>17}",
            o.label, o.corpus_size, o.detected, o.truly_malicious_delivered, o.malicious_observations
        );
    }
    println!();
}

fn bench_countermeasures(c: &mut Criterion) {
    run_ablation();
    // Time the world construction (the fixed cost every ablation pays).
    let config = bench_config(99);
    let mut group = c.benchmark_group("countermeasures");
    group.sample_size(10);
    group.bench_function("world_build", |b| {
        b.iter(|| black_box(Study::new(config.clone())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_countermeasures
}
criterion_main!(benches);
