//! Corpus-construction benchmarks (§3.1): crawl throughput — page loads per
//! second through the emulated browser — and honeyclient classification
//! latency per unique ad.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use malvert_bench::bench_config;
use malvert_core::study::Study;
use malvert_core::world::StudyWorld;
use malvert_crawler::{CrawlConfig, Crawler};
use malvert_types::{CrawlSchedule, SimTime};
use std::hint::black_box;

fn bench_crawl(c: &mut Criterion) {
    let config = bench_config(7);
    let study = Study::new(config.clone());
    let world: &StudyWorld = &study.world;

    // Single-visit latency.
    let crawler = Crawler::builder(&world.network, &world.filter)
        .seeds(world.tree)
        .build();
    let site = world
        .web
        .sites
        .iter()
        .find(|s| s.ad_slots.len() >= 5)
        .expect("site with slots");
    c.bench_function("crawl/single_page_visit", |b| {
        b.iter(|| black_box(crawler.crawl_visit(site, SimTime::at(3, 1))))
    });

    // Batch throughput in page loads.
    let sites: Vec<_> = world.web.sites.iter().take(24).cloned().collect();
    let schedule = CrawlSchedule::scaled(1, 2);
    let loads = sites.len() as u64 * schedule.loads_per_site();
    let mut group = c.benchmark_group("crawl");
    group.throughput(Throughput::Elements(loads));
    group.sample_size(10);
    group.bench_function("batch_page_loads", |b| {
        b.iter(|| {
            let crawler = Crawler::builder(&world.network, &world.filter)
                .config(CrawlConfig {
                    schedule,
                    workers: 8,
                    ..CrawlConfig::default()
                })
                .seeds(world.tree)
                .build();
            let mut n = 0u64;
            crawler.run(&sites, |r| n += r.ads.len() as u64);
            black_box(n)
        })
    });
    group.finish();

    // Honeyclient classification latency (oracle re-visit + all detectors).
    let oracle = malvert_oracle_fixture(world);
    let url = world.ads.serve_url(malvert_types::AdNetworkId(3), 77, 1);
    c.bench_function("oracle/classify_one_ad", |b| {
        b.iter(|| black_box(oracle.classify(&url, SimTime::at(5, 1))))
    });
}

fn malvert_oracle_fixture(world: &StudyWorld) -> malvert_oracle::Oracle<'_> {
    malvert_oracle::Oracle::builder(&world.network, &world.blacklists, &world.scanner)
        .seeds(world.tree)
        .build()
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crawl
}
criterion_main!(benches);
