//! Deterministic synthetic filter lists and URL workloads for the
//! indexed-vs-naive matcher benchmarks.
//!
//! Everything here is a pure function of `(size, seed)`, so the Criterion
//! bench target (`components`) and the `malvert bench-json` subcommand time
//! exactly the same workload and their numbers are comparable across runs
//! and machines.
//!
//! The rule mix mirrors the shapes the generated SimEasyList uses — domain
//! anchors dominate, with path substrings, wildcards, start anchors,
//! resource-type options, `$third-party`, and a sprinkle of `@@`
//! exceptions. URL workloads are ~half potential hits (built from a random
//! rule's domain or path) and ~half clean traffic.

use malvert_filterlist::RequestContext;
use malvert_types::{DetRng, DomainName, Url};

/// Generates an EasyList-style list of `rules` rules, deterministic in
/// `(rules, seed)`.
pub fn synthetic_list(rules: usize, seed: u64) -> String {
    let mut rng = DetRng::new(seed);
    let mut out = String::from("[Adblock Plus 2.0]\n");
    for i in 0..rules {
        let line = match rng.below(100) {
            0..=49 => format!("||ad{i}.srv{}.com^", i % 97),
            50..=64 => format!("/creative{i}/"),
            65..=74 => format!("/track{i}/*session="),
            75..=84 => format!("|http://pop{i}."),
            85..=91 => format!("/zone{i}/$subdocument"),
            92..=96 => format!("||beacon{i}.net^$third-party"),
            _ => format!("@@||ad{i}.srv{}.com/whitelisted/", i % 97),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Generates `count` request URLs against a list of `rules` rules,
/// deterministic in `(count, rules, seed)`. Roughly half reference a random
/// rule's domain or path (potential hits); the rest are clean traffic.
pub fn synthetic_urls(count: usize, rules: usize, seed: u64) -> Vec<Url> {
    let mut rng = DetRng::new(seed);
    (0..count)
        .map(|j| {
            let r = rng.below(rules.max(1));
            let text = match rng.below(4) {
                0 => format!("http://ad{r}.srv{}.com/landing?slot={j}", r % 97),
                1 => format!("http://pub{}.example.com/creative{r}/frame.html", j % 13),
                2 => format!("http://cdn{}.example.net/static/asset{j}.js", j % 7),
                _ => format!("http://site{}.example.org/article/{j}?ref=front", j % 31),
            };
            Url::parse(&text).expect("synthetic URL parses")
        })
        .collect()
}

/// The request context the synthetic workload is matched in: an iframe on
/// a third-party publisher page.
pub fn synthetic_context() -> RequestContext {
    RequestContext::iframe_from(&DomainName::parse("publisher.example.com").expect("static host"))
}

/// Generates `count` distinct AdScript programs, deterministic in
/// `(count, seed)`.
///
/// Each program mimics the shape of a served creative: a large parse
/// surface (dozens of helper function declarations, most of them never
/// called) in front of a short live path that writes its result to the
/// `out` global. Parse cost therefore dominates execution cost, which is
/// exactly the regime the compile cache targets — a warm
/// [`malvert_adscript::ScriptCache`] skips the front end and only pays the
/// short live path.
pub fn synthetic_scripts(count: usize, seed: u64) -> Vec<String> {
    let mut rng = DetRng::new(seed);
    (0..count)
        .map(|i| {
            let helpers = 24 + rng.below(16);
            let mut src = String::new();
            for f in 0..helpers {
                let k1 = rng.below(97) + 1;
                let k2 = rng.below(89) + 1;
                src.push_str(&format!(
                    "function helper{i}_{f}(a, b) {{\n\
                     \x20 var t = a * {k1} + b * {k2};\n\
                     \x20 var s = '' + t;\n\
                     \x20 if (s.indexOf('{f}') >= 0) {{ t = t + s.length; }}\n\
                     \x20 while (t > 1000) {{ t = t - 997; }}\n\
                     \x20 return t;\n\
                     }}\n"
                ));
            }
            let rounds = rng.below(5) + 3;
            let k = rng.below(41) + 1;
            src.push_str(&format!(
                "var acc = {i};\n\
                 for (var n = 0; n < {rounds}; n++) {{ acc = acc + helper{i}_0(n, {k}); }}\n\
                 out = '' + acc;\n"
            ));
            src
        })
        .collect()
}

/// Generates `count` execution-heavy AdScript programs, deterministic in
/// `(count, seed)`.
///
/// The mirror image of [`synthetic_scripts`]: a tiny parse surface in front
/// of a hot loop that dominates the runtime. The shape mimics a *packed*
/// creative the way obfuscators emit them — a stack of IIFE wrappers, hex
/// `_0x…` identifier renaming, shared mutable state in globals and plain
/// objects rather than locals, and statement-form compound updates. That is
/// simultaneously the regime the bytecode VM targets: global and property
/// traffic hits the monomorphic inline caches, while the tree-walk oracle
/// re-hashes every long identifier and walks the wrapper scope chain on
/// each access. Scripts are host-free (pure compute into the `out` global)
/// so benches can run them under `NoHost`.
pub fn synthetic_exec_scripts(count: usize, seed: u64) -> Vec<String> {
    let mut rng = DetRng::new(seed);
    let mut serial = 0usize;
    let mut name = |rng: &mut DetRng| {
        serial += 1;
        let mut n = format!("_0x{serial:x}");
        for _ in 0..6 + rng.below(10) {
            n.push(char::from_digit(rng.below(16) as u32, 16).expect("hex digit"));
        }
        n
    };
    (0..count)
        .map(|i| {
            // Globals: two accumulators, a loop counter (assigned without
            // `var`, as sloppy packed code does), and a state object.
            let acc = name(&mut rng);
            let mul = name(&mut rng);
            let idx = name(&mut rng);
            let st = name(&mut rng);
            let f: Vec<String> = (0..4).map(|_| name(&mut rng)).collect();
            let k1 = rng.below(97) + 2;
            let k2 = rng.below(89) + 2;
            let k3 = rng.below(41) + 3;
            let rounds = 1500 + rng.below(1000);
            let depth = 3 + rng.below(4);
            let mut src = format!(
                "var {acc} = {i}; var {mul} = {k2};\n\
                 var {st} = {{ {}: {k1}, {}: {k3}, {}: 0, {}: 0 }};\n",
                f[0], f[1], f[2], f[3]
            );
            for _ in 0..depth {
                src.push_str("(function () { ");
            }
            src.push('\n');
            src.push_str(&format!(
                "for ({idx} = 0; {idx} < {rounds}; {idx}++) {{\n\
                 \x20 {acc} = ({acc} + {mul} * {idx} + {st}.{}) % 1000003;\n\
                 \x20 {st}.{} = {st}.{} + {st}.{} * 3 + {acc} % 7;\n\
                 \x20 {st}.{}++;\n\
                 \x20 if ({st}.{} > 1000000) {{ {st}.{} %= 10007; }}\n\
                 }}\n",
                f[0], f[2], f[2], f[1], f[3], f[2], f[2]
            ));
            for _ in 0..depth {
                src.push_str("})(); ");
            }
            src.push('\n');
            src.push_str(&format!(
                "out = '' + ({acc} + {st}.{} + {st}.{});\n",
                f[2], f[3]
            ));
            src
        })
        .collect()
}

/// Generates `count` execution-heavy AdScript programs whose property
/// traffic is deliberately *polymorphic*, deterministic in `(count, seed)`.
///
/// The adversarial counterpart of [`synthetic_exec_scripts`]: every script
/// builds a bank of six state objects that carry the **same four property
/// names but in rotated insertion orders**, so under a hidden-class object
/// model each object lands on a different shape. The hot loop then cycles
/// through the bank, which forces every property-access site to see all six
/// shapes in turn — the worst case for a monomorphic `(shape, slot)` inline
/// cache, which misses back to the name-map probe on nearly every access.
/// Benching this next to the monomorphic workload shows how much of the VM's
/// edge survives when creatives mix object layouts at a single site.
pub fn synthetic_exec_scripts_poly(count: usize, seed: u64) -> Vec<String> {
    let mut rng = DetRng::new(seed);
    let mut serial = 0usize;
    let mut name = |rng: &mut DetRng| {
        serial += 1;
        let mut n = format!("_0p{serial:x}");
        for _ in 0..6 + rng.below(10) {
            n.push(char::from_digit(rng.below(16) as u32, 16).expect("hex digit"));
        }
        n
    };
    const BANK: usize = 6;
    (0..count)
        .map(|i| {
            let acc = name(&mut rng);
            let idx = name(&mut rng);
            let cur = name(&mut rng);
            let f: Vec<String> = (0..4).map(|_| name(&mut rng)).collect();
            let objs: Vec<String> = (0..BANK).map(|_| name(&mut rng)).collect();
            let k1 = rng.below(97) + 2;
            let k2 = rng.below(89) + 2;
            let rounds = 1500 + rng.below(1000);
            let mut src = format!("var {acc} = {i};\n");
            // Same four keys on every object, insertion order rotated per
            // object: object o starts its literal at key (o mod 4).
            for (o, obj) in objs.iter().enumerate() {
                let mut fields = String::new();
                for j in 0..4 {
                    let key = &f[(o + j) % 4];
                    let val = o * 4 + j + k1;
                    if j > 0 {
                        fields.push_str(", ");
                    }
                    fields.push_str(&format!("{key}: {val}"));
                }
                src.push_str(&format!("var {obj} = {{ {fields} }};\n"));
            }
            src.push_str(&format!(
                "for ({idx} = 0; {idx} < {rounds}; {idx}++) {{\n\
                 \x20 var {cur} = {idx} % {BANK} == 0 ? {o0} : {idx} % {BANK} == 1 ? {o1} : \
                 {idx} % {BANK} == 2 ? {o2} : {idx} % {BANK} == 3 ? {o3} : \
                 {idx} % {BANK} == 4 ? {o4} : {o5};\n\
                 \x20 {acc} = ({acc} + {cur}.{f0} * {k2} + {cur}.{f1}) % 1000003;\n\
                 \x20 {cur}.{f2} = {cur}.{f2} + {cur}.{f3} * 3 + {acc} % 7;\n\
                 \x20 if ({cur}.{f2} > 1000000) {{ {cur}.{f2} %= 10007; }}\n\
                 }}\n",
                o0 = objs[0],
                o1 = objs[1],
                o2 = objs[2],
                o3 = objs[3],
                o4 = objs[4],
                o5 = objs[5],
                f0 = f[0],
                f1 = f[1],
                f2 = f[2],
                f3 = f[3],
            ));
            src.push_str(&format!(
                "out = '' + ({acc} + {o0}.{f2} + {o5}.{f2});\n",
                o0 = objs[0],
                o5 = objs[5],
                f2 = f[2],
            ));
            src
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_filterlist::{FilterSet, MatchScratch};

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        assert_eq!(synthetic_list(200, 7), synthetic_list(200, 7));
        assert_ne!(synthetic_list(200, 7), synthetic_list(200, 8));
        let a = synthetic_urls(50, 200, 3);
        let b = synthetic_urls(50, 200, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn list_parses_and_workload_mixes_hits_and_misses() {
        let set = FilterSet::parse(&synthetic_list(500, 11));
        assert!(set.blocking_rule_count() > 400);
        let urls = synthetic_urls(200, 500, 12);
        let ctx = synthetic_context();
        let hits = urls.iter().filter(|u| set.is_ad_url(u, &ctx)).count();
        assert!(hits > 0, "workload never hits the list");
        assert!(hits < urls.len(), "workload always hits the list");
    }

    #[test]
    fn script_generation_is_deterministic_in_the_seed() {
        assert_eq!(synthetic_scripts(10, 5), synthetic_scripts(10, 5));
        assert_ne!(synthetic_scripts(10, 5), synthetic_scripts(10, 6));
    }

    #[test]
    fn scripts_compile_and_run_and_caching_is_invisible() {
        use malvert_adscript::{CompiledScript, Interpreter, Limits, NoHost};
        for (i, src) in synthetic_scripts(8, 31).iter().enumerate() {
            let script = CompiledScript::compile(src)
                .unwrap_or_else(|e| panic!("script {i} fails to compile: {e}"));
            let mut direct = Interpreter::new(NoHost, Limits::default(), 1);
            direct
                .run(src)
                .unwrap_or_else(|e| panic!("script {i} fails: {e}"));
            let mut precompiled = Interpreter::new(NoHost, Limits::default(), 1);
            precompiled.run_program(&script).unwrap();
            let a = direct
                .get_global("out")
                .unwrap_or_else(|| panic!("script {i} wrote no output"));
            let b = precompiled.get_global("out").expect("precompiled output");
            assert!(
                a.strict_eq(b),
                "script {i}: precompiled run diverges from direct run"
            );
        }
    }

    #[test]
    fn exec_script_generation_is_deterministic_in_the_seed() {
        assert_eq!(synthetic_exec_scripts(6, 77), synthetic_exec_scripts(6, 77));
        assert_ne!(synthetic_exec_scripts(6, 77), synthetic_exec_scripts(6, 78));
    }

    #[test]
    fn exec_scripts_run_identically_on_both_engines() {
        use malvert_adscript::{CompiledScript, Interpreter, Limits, NoHost, ScriptEngine};
        for (i, src) in synthetic_exec_scripts(6, 77).iter().enumerate() {
            let script = CompiledScript::compile(src)
                .unwrap_or_else(|e| panic!("exec script {i} fails to compile: {e}"));
            let run = |engine: ScriptEngine| {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                interp.set_engine(engine);
                interp
                    .run_program(&script)
                    .unwrap_or_else(|e| panic!("exec script {i} fails on {engine}: {e}"));
                interp
                    .get_global("out")
                    .unwrap_or_else(|| panic!("exec script {i} wrote no output"))
                    .clone()
            };
            assert!(
                run(ScriptEngine::TreeWalk).strict_eq(&run(ScriptEngine::Vm)),
                "exec script {i}: engines diverge"
            );
        }
    }

    #[test]
    fn poly_script_generation_is_deterministic_in_the_seed() {
        assert_eq!(
            synthetic_exec_scripts_poly(6, 41),
            synthetic_exec_scripts_poly(6, 41)
        );
        assert_ne!(
            synthetic_exec_scripts_poly(6, 41),
            synthetic_exec_scripts_poly(6, 42)
        );
    }

    #[test]
    fn poly_scripts_rotate_insertion_orders() {
        // Every script declares six object literals over the same four keys;
        // at least two literals must start with different keys, otherwise the
        // workload would not be shape-polymorphic at all.
        for src in synthetic_exec_scripts_poly(4, 43) {
            let first_keys: Vec<&str> = src
                .lines()
                .filter_map(|l| l.split_once("{ ")?.1.split_once(':'))
                .map(|(k, _)| k.trim())
                .collect();
            assert_eq!(first_keys.len(), 6, "expected six object literals");
            assert!(
                first_keys.iter().any(|k| *k != first_keys[0]),
                "all literals share one insertion order"
            );
        }
    }

    #[test]
    fn poly_scripts_run_identically_on_both_engines() {
        use malvert_adscript::{CompiledScript, Interpreter, Limits, NoHost, ScriptEngine};
        for (i, src) in synthetic_exec_scripts_poly(6, 41).iter().enumerate() {
            let script = CompiledScript::compile(src)
                .unwrap_or_else(|e| panic!("poly script {i} fails to compile: {e}"));
            let run = |engine: ScriptEngine| {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                interp.set_engine(engine);
                interp
                    .run_program(&script)
                    .unwrap_or_else(|e| panic!("poly script {i} fails on {engine}: {e}"));
                interp
                    .get_global("out")
                    .unwrap_or_else(|| panic!("poly script {i} wrote no output"))
                    .clone()
            };
            assert!(
                run(ScriptEngine::TreeWalk).strict_eq(&run(ScriptEngine::Vm)),
                "poly script {i}: engines diverge"
            );
        }
    }

    #[test]
    fn indexed_and_naive_agree_on_the_synthetic_workload() {
        let set = FilterSet::parse(&synthetic_list(1_000, 21));
        let ctx = synthetic_context();
        let mut scratch = MatchScratch::default();
        for url in synthetic_urls(300, 1_000, 22) {
            assert_eq!(
                set.matches_with(&url, &ctx, &mut scratch),
                set.matches_naive(&url, &ctx),
                "divergence on {url}"
            );
        }
    }
}
