//! # malvert-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Each bench target
//! regenerates one of the paper's tables/figures (printing the rendered
//! block) and times the pipeline stage behind it.
//!
//! Bench targets (run `cargo bench -p malvert-bench`):
//!
//! * `table1_figures` — runs the study once at bench scale, prints Table 1,
//!   Figures 1–5, the cluster split, and the sandbox census, and times each
//!   analysis.
//! * `corpus` — crawl throughput (page loads/sec) and corpus
//!   deduplication.
//! * `components` — component ablations: EasyList matching throughput
//!   (including indexed-vs-naive matcher comparisons on the [`synth`]
//!   workloads at 100/1k/10k rules), AdScript deobfuscation throughput,
//!   blacklist threshold sweep, scanner consensus sweep.
//! * `adscript` — the `adscript_compile/{cold,warm,interned}` group (the
//!   script compilation cache against cold compiles on the [`synth`]
//!   script workload) and the `adscript_exec/{tree_walk,vm}` group (the
//!   bytecode VM against the retained tree-walk oracle on the
//!   execution-heavy packed-creative workload) — the same measurements
//!   `malvert bench-json` times into `BENCH_adscript.json`.
//! * `countermeasures` — §5 ablation comparison.
//! * `study` — end-to-end pipelined study throughput (page loads/sec) on
//!   two corpus scales, plus a checkpointed variant pinning the snapshot
//!   overhead (the same workloads behind `malvert bench-json
//!   --study-out`).

use malvert_core::study::{Study, StudyConfig, StudyResults};
use malvert_types::CrawlSchedule;
use malvert_websim::WebConfig;
use std::sync::OnceLock;

pub mod synth;

/// The configuration used by bench runs: large enough for stable shapes,
/// small enough that `cargo bench` finishes in minutes.
pub fn bench_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        web: WebConfig {
            ranking_universe: 100_000,
            top_slice: 100,
            bottom_slice: 100,
            random_slice: 200,
            security_feed: 60,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: malvert_crawler::CrawlConfig {
            schedule: CrawlSchedule::scaled(8, 2),
            workers: 8,
            ..Default::default()
        },
        ..StudyConfig::default()
    }
}

/// A completed bench-scale study, shared across bench targets in one
/// process.
pub fn shared_study() -> &'static (Study, StudyResults) {
    static CELL: OnceLock<(Study, StudyResults)> = OnceLock::new();
    CELL.get_or_init(|| {
        let study = Study::builder()
            .config(bench_config(2014))
            .build()
            .expect("no resume requested");
        let results = study.run();
        (study, results)
    })
}
