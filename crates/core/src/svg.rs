//! SVG renderings of the paper's figures — self-contained vector charts
//! (no plotting dependency), suitable for dropping into reports.

use crate::analysis::{Fig1Row, Fig3Row, Fig4Row, Fig5Histogram};

const BAR_COLOR: &str = "#4878a8";
const MAL_COLOR: &str = "#b84848";
const BG: &str = "#ffffff";
const FG: &str = "#202020";

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// A horizontal bar chart: one row per `(label, value, share_of_max)`.
fn bar_chart(title: &str, rows: &[(String, f64, String)], value_unit: &str) -> String {
    let row_h = 22;
    let label_w = 170;
    let chart_w = 420;
    let value_w = 110;
    let top = 34;
    let width = label_w + chart_w + value_w + 20;
    let height = top + rows.len() as i32 * row_h + 16;
    let max = rows.iter().map(|(_, v, _)| *v).fold(f64::EPSILON, f64::max);

    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" font-family=\"sans-serif\" font-size=\"12\">\n\
         <rect width=\"{width}\" height=\"{height}\" fill=\"{BG}\"/>\n\
         <text x=\"10\" y=\"20\" font-size=\"14\" font-weight=\"bold\" fill=\"{FG}\">{}</text>\n",
        esc(title)
    );
    for (i, (label, value, color)) in rows.iter().enumerate() {
        let y = top + i as i32 * row_h;
        let bar = (value / max * f64::from(chart_w)).max(1.0);
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" fill=\"{FG}\">{}</text>\n",
            label_w - 6,
            y + 15,
            esc(label)
        ));
        out.push_str(&format!(
            "<rect x=\"{label_w}\" y=\"{}\" width=\"{bar:.1}\" height=\"{}\" fill=\"{color}\"/>\n",
            y + 4,
            row_h - 8
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{}\" fill=\"{FG}\">{value:.1}{value_unit}</text>\n",
            f64::from(label_w) + bar + 6.0,
            y + 15
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Figure 1 as an SVG bar chart of per-network malvertising ratios.
pub fn fig1_svg(rows: &[Fig1Row]) -> String {
    let data: Vec<(String, f64, String)> = rows
        .iter()
        .map(|r| (r.name.clone(), r.ratio * 100.0, BAR_COLOR.to_string()))
        .collect();
    bar_chart(
        "Figure 1: malvertising ratio per ad network",
        &data,
        "%",
    )
}

/// Figure 3 as an SVG bar chart of site-category shares.
pub fn fig3_svg(rows: &[Fig3Row]) -> String {
    let data: Vec<(String, f64, String)> = rows
        .iter()
        .map(|r| (r.category.clone(), r.share * 100.0, BAR_COLOR.to_string()))
        .collect();
    bar_chart(
        "Figure 3: categories of malvertising websites",
        &data,
        "%",
    )
}

/// Figure 4 as an SVG bar chart of TLD shares (generic TLDs highlighted).
pub fn fig4_svg(rows: &[Fig4Row]) -> String {
    let data: Vec<(String, f64, String)> = rows
        .iter()
        .map(|r| {
            (
                r.tld.clone(),
                r.share * 100.0,
                if r.generic { MAL_COLOR } else { BAR_COLOR }.to_string(),
            )
        })
        .collect();
    bar_chart(
        "Figure 4: malvertising hosts by TLD (generic TLDs in red)",
        &data,
        "%",
    )
}

/// Figure 5 as a grouped log-scale column chart: benign vs malicious chain
/// length distributions.
pub fn fig5_svg(hist: &Fig5Histogram) -> String {
    let max_len = hist.benign_max().max(hist.malicious_max());
    let benign_total: f64 = hist.benign.values().sum::<u64>() as f64;
    let mal_total: f64 = hist.malicious.values().sum::<u64>() as f64;
    let col_w = 18;
    let gap = 6;
    let chart_h = 220.0;
    let left = 50;
    let top = 40;
    let width = left + (max_len as i32 + 1) * (2 * col_w + gap) + 30;
    let height = top + chart_h as i32 + 50;

    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" font-family=\"sans-serif\" font-size=\"11\">\n\
         <rect width=\"{width}\" height=\"{height}\" fill=\"{BG}\"/>\n\
         <text x=\"10\" y=\"20\" font-size=\"14\" font-weight=\"bold\" fill=\"{FG}\">\
         Figure 5: arbitration chain lengths (share of observations)</text>\n\
         <rect x=\"{left}\" y=\"26\" width=\"10\" height=\"10\" fill=\"{BAR_COLOR}\"/>\
         <text x=\"{}\" y=\"35\" fill=\"{FG}\">benign</text>\n\
         <rect x=\"{}\" y=\"26\" width=\"10\" height=\"10\" fill=\"{MAL_COLOR}\"/>\
         <text x=\"{}\" y=\"35\" fill=\"{FG}\">malicious</text>\n",
        left + 14,
        left + 80,
        left + 94,
    );
    // Shares are plotted on a sqrt scale so the long tail stays visible.
    let y_of = |share: f64| top as f64 + chart_h - share.sqrt() * chart_h;
    for len in 0..=max_len {
        let x = left + len as i32 * (2 * col_w + gap);
        let b = hist.benign.get(&len).copied().unwrap_or(0) as f64
            / benign_total.max(1.0);
        let m = hist.malicious.get(&len).copied().unwrap_or(0) as f64
            / mal_total.max(1.0);
        let b_y = y_of(b);
        let m_y = y_of(m);
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{b_y:.1}\" width=\"{col_w}\" height=\"{:.1}\" fill=\"{BAR_COLOR}\"/>\n",
            top as f64 + chart_h - b_y
        ));
        out.push_str(&format!(
            "<rect x=\"{}\" y=\"{m_y:.1}\" width=\"{col_w}\" height=\"{:.1}\" fill=\"{MAL_COLOR}\"/>\n",
            x + col_w,
            top as f64 + chart_h - m_y
        ));
        if len % 2 == 0 {
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"{FG}\">{len}</text>\n",
                x + col_w,
                top as f64 + chart_h + 16.0
            ));
        }
    }
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"{FG}\">auctions</text>\n",
        left + (max_len as i32 + 1) * (2 * col_w + gap) / 2,
        top as f64 + chart_h + 36.0
    ));
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_types::AdNetworkId;
    use std::collections::BTreeMap;

    fn check_svg(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Every <rect and <text is self-closed or closed.
        let opens = svg.matches("<text").count();
        let closes = svg.matches("</text>").count();
        assert_eq!(opens, closes);
        // No raw ampersands (escaping worked).
        for chunk in svg.split('&').skip(1) {
            assert!(
                chunk.starts_with("amp;")
                    || chunk.starts_with("lt;")
                    || chunk.starts_with("gt;")
                    || chunk.starts_with("quot;"),
                "unescaped & in SVG"
            );
        }
    }

    #[test]
    fn fig1_svg_renders() {
        let rows = vec![
            Fig1Row {
                network: AdNetworkId(39),
                name: "ClickBoost39 <&> test".into(),
                malicious: 7,
                total: 22,
                ratio: 0.318,
            },
            Fig1Row {
                network: AdNetworkId(0),
                name: "ExchangePrime0".into(),
                malicious: 2,
                total: 1260,
                ratio: 0.0016,
            },
        ];
        let svg = fig1_svg(&rows);
        check_svg(&svg);
        assert!(svg.contains("31.8%"));
        assert!(svg.contains("&lt;&amp;&gt;"));
    }

    #[test]
    fn fig3_fig4_svg_render() {
        let svg = fig3_svg(&[Fig3Row {
            category: "Entertainment".into(),
            sites: 413,
            share: 0.164,
        }]);
        check_svg(&svg);
        let svg = fig4_svg(&[
            Fig4Row {
                tld: ".com".into(),
                generic: true,
                sites: 1113,
                share: 0.443,
            },
            Fig4Row {
                tld: ".de".into(),
                generic: false,
                sites: 132,
                share: 0.053,
            },
        ]);
        check_svg(&svg);
        assert!(svg.contains(MAL_COLOR));
        assert!(svg.contains(BAR_COLOR));
    }

    #[test]
    fn fig5_svg_renders() {
        let mut benign = BTreeMap::new();
        benign.insert(0usize, 1000u64);
        benign.insert(1, 300);
        benign.insert(5, 10);
        let mut malicious = BTreeMap::new();
        malicious.insert(0usize, 100u64);
        malicious.insert(3, 80);
        malicious.insert(20, 5);
        let hist = Fig5Histogram { benign, malicious };
        let svg = fig5_svg(&hist);
        check_svg(&svg);
        assert!(svg.contains("benign"));
        assert!(svg.contains("malicious"));
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        check_svg(&fig1_svg(&[]));
        check_svg(&fig3_svg(&[]));
        let hist = Fig5Histogram {
            benign: BTreeMap::new(),
            malicious: BTreeMap::new(),
        };
        check_svg(&fig5_svg(&hist));
    }
}
