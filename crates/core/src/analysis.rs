//! The analyses of §4: Table 1, Figures 1–5, the cluster split, and the
//! sandbox census, computed from [`StudyResults`].

use crate::study::StudyResults;
use crate::world::StudyWorld;
use malvert_oracle::IncidentType;
use malvert_types::{AdNetworkId, SiteCategory, TldClass};
use malvert_websim::CrawlCluster;
use serde::Serialize;
use std::collections::BTreeMap;

/// Table 1: incident counts per category (exclusive categories, rows sum to
/// the total).
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// `(category label, count)` in row order.
    pub rows: Vec<(String, usize)>,
    /// Total incidents.
    pub total: usize,
    /// Unique ads in the corpus.
    pub corpus_size: usize,
    /// Fraction of the corpus flagged malicious.
    pub malicious_fraction: f64,
}

/// Computes Table 1.
pub fn table1(results: &StudyResults) -> Table1 {
    let mut counts: BTreeMap<IncidentType, usize> = BTreeMap::new();
    for ad in results.detected_ads() {
        *counts.entry(ad.category.expect("detected")).or_default() += 1;
    }
    let rows: Vec<(String, usize)> = IncidentType::ALL
        .iter()
        .map(|t| (t.label().to_string(), counts.get(t).copied().unwrap_or(0)))
        .collect();
    let total: usize = rows.iter().map(|(_, c)| c).sum();
    let corpus_size = results.unique_ads();
    Table1 {
        rows,
        total,
        corpus_size,
        malicious_fraction: if corpus_size == 0 {
            0.0
        } else {
            total as f64 / corpus_size as f64
        },
    }
}

/// One row of Figure 1: a network's malvertising ratio.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// Network id.
    pub network: AdNetworkId,
    /// Display name.
    pub name: String,
    /// Unique malicious ads served by the network.
    pub malicious: usize,
    /// Unique ads served by the network in total.
    pub total: usize,
    /// `malicious / total`.
    pub ratio: f64,
}

/// Figure 1: per-network malvertising ratio, sorted decreasing, restricted
/// (like the paper's plot) to networks that served at least one
/// malvertisement.
pub fn fig1_network_ratios(results: &StudyResults, world: &StudyWorld) -> Vec<Fig1Row> {
    let mut malicious: BTreeMap<AdNetworkId, usize> = BTreeMap::new();
    let mut total: BTreeMap<AdNetworkId, usize> = BTreeMap::new();
    for ad in &results.ads {
        if let Some(n) = ad.serving_network {
            *total.entry(n).or_default() += 1;
            if ad.category.is_some() {
                *malicious.entry(n).or_default() += 1;
            }
        }
    }
    let mut rows: Vec<Fig1Row> = malicious
        .iter()
        .map(|(&network, &m)| {
            let t = total.get(&network).copied().unwrap_or(m);
            Fig1Row {
                network,
                name: world.ads.networks()[network.index()].name.clone(),
                malicious: m,
                total: t,
                ratio: m as f64 / t.max(1) as f64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.network.cmp(&b.network))
    });
    rows
}

/// One row of Figure 2: a network's share of total ad volume.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Network id.
    pub network: AdNetworkId,
    /// Display name.
    pub name: String,
    /// Ad observations served by this network.
    pub observations: u64,
    /// Share of all ad observations.
    pub share: f64,
    /// Unique malicious ads it served (context for the hotspot finding).
    pub malicious: usize,
    /// Whether the generator designated this network as the hotspot.
    pub is_hotspot: bool,
}

/// Figure 2: the same networks' share of the *total* served advertisements —
/// showing most malvertising networks are small, with the hotspot exception.
pub fn fig2_network_volume(results: &StudyResults, world: &StudyWorld) -> Vec<Fig2Row> {
    let mut obs: BTreeMap<AdNetworkId, u64> = BTreeMap::new();
    let mut malicious: BTreeMap<AdNetworkId, usize> = BTreeMap::new();
    let mut total_obs = 0u64;
    for ad in &results.ads {
        if let Some(n) = ad.serving_network {
            *obs.entry(n).or_default() += ad.observations;
            total_obs += ad.observations;
            if ad.category.is_some() {
                *malicious.entry(n).or_default() += 1;
            }
        }
    }
    // Same network set as Figure 1 (those with ≥1 malvertisement).
    let mut rows: Vec<Fig2Row> = malicious
        .iter()
        .map(|(&network, &m)| {
            let o = obs.get(&network).copied().unwrap_or(0);
            Fig2Row {
                network,
                name: world.ads.networks()[network.index()].name.clone(),
                observations: o,
                share: if total_obs == 0 {
                    0.0
                } else {
                    o as f64 / total_obs as f64
                },
                malicious: m,
                is_hotspot: world.ads.networks()[network.index()].is_hotspot,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.network.cmp(&b.network))
    });
    rows
}

/// The §4.2 cluster split: share of malvertisements and of all ads served by
/// the top-10k / bottom-10k / rest site clusters.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterSplit {
    /// `(cluster label, malvert share, ad share)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Computes the cluster split. Malvertisement share counts (malicious ad,
/// site) placements; ad share counts all ad observations per cluster.
pub fn cluster_split(results: &StudyResults, world: &StudyWorld) -> ClusterSplit {
    let clusters = [CrawlCluster::Top, CrawlCluster::Bottom, CrawlCluster::Rest];
    let mut mal_counts = [0u64; 3];
    let mut ad_counts = [0u64; 3];
    let cluster_idx = |c: CrawlCluster| clusters.iter().position(|x| *x == c).unwrap();

    for ad in &results.ads {
        if ad.category.is_some() {
            for site in &ad.sites {
                let c = world.web.site(*site).cluster;
                mal_counts[cluster_idx(c)] += 1;
            }
        }
    }
    for (site, count) in &results.site_ad_observations {
        let c = world.web.site(*site).cluster;
        ad_counts[cluster_idx(c)] += count;
    }
    let mal_total: u64 = mal_counts.iter().sum();
    let ad_total: u64 = ad_counts.iter().sum();
    ClusterSplit {
        rows: clusters
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    c.label().to_string(),
                    if mal_total == 0 {
                        0.0
                    } else {
                        mal_counts[i] as f64 / mal_total as f64
                    },
                    if ad_total == 0 {
                        0.0
                    } else {
                        ad_counts[i] as f64 / ad_total as f64
                    },
                )
            })
            .collect(),
    }
}

/// One slice of Figure 3: a website category's share of malvert-hosting
/// sites.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Category label.
    pub category: String,
    /// Distinct sites of this category that served a malvertisement.
    pub sites: usize,
    /// Share of all malvert-hosting sites.
    pub share: f64,
}

/// Figure 3: categorization of websites that served malvertisements.
pub fn fig3_categories(results: &StudyResults, world: &StudyWorld) -> Vec<Fig3Row> {
    let mut site_set: std::collections::BTreeSet<malvert_types::SiteId> =
        std::collections::BTreeSet::new();
    for ad in results.detected_ads() {
        site_set.extend(ad.sites.iter().copied());
    }
    let mut counts: BTreeMap<SiteCategory, usize> = BTreeMap::new();
    for site in &site_set {
        *counts.entry(world.web.site(*site).category).or_default() += 1;
    }
    let total: usize = counts.values().sum();
    let mut rows: Vec<Fig3Row> = counts
        .into_iter()
        .map(|(cat, n)| Fig3Row {
            category: cat.label().to_string(),
            sites: n,
            share: if total == 0 { 0.0 } else { n as f64 / total as f64 },
        })
        .collect();
    rows.sort_by(|a, b| b.sites.cmp(&a.sites).then(a.category.cmp(&b.category)));
    rows
}

/// One slice of Figure 4: a TLD's share of malvert-hosting sites.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// TLD label (with leading dot).
    pub tld: String,
    /// Whether it is a generic TLD.
    pub generic: bool,
    /// Distinct malvert-hosting sites under this TLD.
    pub sites: usize,
    /// Share of all malvert-hosting sites.
    pub share: f64,
}

/// Figure 4: malvertisement distribution by top-level domain, plus the
/// generic-TLD aggregate share the paper reports (>66%).
pub fn fig4_tlds(results: &StudyResults, world: &StudyWorld) -> (Vec<Fig4Row>, f64) {
    let mut site_set: std::collections::BTreeSet<malvert_types::SiteId> =
        std::collections::BTreeSet::new();
    for ad in results.detected_ads() {
        site_set.extend(ad.sites.iter().copied());
    }
    let mut counts: BTreeMap<String, (usize, bool)> = BTreeMap::new();
    for site in &site_set {
        let tld = world.web.site(*site).domain.tld();
        let generic = tld.class() == TldClass::Generic;
        let entry = counts.entry(tld.to_string()).or_insert((0, generic));
        entry.0 += 1;
    }
    let total: usize = counts.values().map(|(n, _)| n).sum();
    let generic_sites: usize = counts
        .values()
        .filter(|(_, g)| *g)
        .map(|(n, _)| n)
        .sum();
    let mut rows: Vec<Fig4Row> = counts
        .into_iter()
        .map(|(tld, (n, generic))| Fig4Row {
            tld,
            generic,
            sites: n,
            share: if total == 0 { 0.0 } else { n as f64 / total as f64 },
        })
        .collect();
    rows.sort_by(|a, b| b.sites.cmp(&a.sites).then(a.tld.cmp(&b.tld)));
    let generic_share = if total == 0 {
        0.0
    } else {
        generic_sites as f64 / total as f64
    };
    (rows, generic_share)
}

/// Figure 5: arbitration-chain length distributions, benign vs malicious.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Histogram {
    /// Observation counts per auction count (chain hops = requests − 1) for
    /// ads that were *not* flagged.
    pub benign: BTreeMap<usize, u64>,
    /// The same for flagged ads.
    pub malicious: BTreeMap<usize, u64>,
}

impl Fig5Histogram {
    /// Longest benign chain (in auctions).
    pub fn benign_max(&self) -> usize {
        self.benign.keys().copied().max().unwrap_or(0)
    }

    /// Longest malicious chain (in auctions).
    pub fn malicious_max(&self) -> usize {
        self.malicious.keys().copied().max().unwrap_or(0)
    }

    /// Fraction of malicious observations whose chain exceeded `auctions`.
    pub fn malicious_tail_fraction(&self, auctions: usize) -> f64 {
        let total: u64 = self.malicious.values().sum();
        if total == 0 {
            return 0.0;
        }
        let tail: u64 = self
            .malicious
            .iter()
            .filter(|(len, _)| **len > auctions)
            .map(|(_, c)| c)
            .sum();
        tail as f64 / total as f64
    }
}

/// Computes Figure 5 from the per-ad chain-length tallies. Chain length in
/// *requests* converts to auctions as `len - 1`.
pub fn fig5_chains(results: &StudyResults) -> Fig5Histogram {
    let mut hist = Fig5Histogram {
        benign: BTreeMap::new(),
        malicious: BTreeMap::new(),
    };
    for ad in &results.ads {
        let target = if ad.category.is_some() {
            &mut hist.malicious
        } else {
            &mut hist.benign
        };
        for (&len, &count) in &ad.chain_length_counts {
            *target.entry(len.saturating_sub(1)).or_default() += count;
        }
    }
    hist
}

/// §4.3's repeat-participant observation: counts chains (among flagged ads'
/// longest chains) in which some network appears more than once.
pub fn repeat_participation(results: &StudyResults) -> (usize, usize) {
    let mut with_repeats = 0;
    let mut total = 0;
    for ad in results.detected_ads() {
        if ad.chain_networks.len() < 2 {
            continue;
        }
        total += 1;
        let mut seen = std::collections::BTreeSet::new();
        if ad.chain_networks.iter().any(|n| !seen.insert(*n)) {
            with_repeats += 1;
        }
    }
    (with_repeats, total)
}

/// §4.3's tier-composition observation: "once the auction process gets
/// longer the last auctions typically happen only among those ad networks
/// that we found to serve malvertisements". For each auction-depth bucket,
/// the share of participating hops that belong to each network tier.
#[derive(Debug, Clone, Serialize)]
pub struct LateAuctionTiers {
    /// `(bucket label, major share, mid share, shady share, hops counted)`.
    pub buckets: Vec<(String, f64, f64, f64, u64)>,
}

/// Computes tier composition by auction depth over the longest observed
/// chain of every ad.
pub fn late_auction_tiers(results: &StudyResults, world: &StudyWorld) -> LateAuctionTiers {
    use malvert_adnet::NetworkTier;
    // Depth buckets: hops 0-2, 3-7, 8-14, 15+.
    let bucket_of = |depth: usize| match depth {
        0..=2 => 0usize,
        3..=7 => 1,
        8..=14 => 2,
        _ => 3,
    };
    let labels = ["auctions 0-2", "auctions 3-7", "auctions 8-14", "auctions 15+"];
    let mut counts = [[0u64; 3]; 4];
    for ad in &results.ads {
        for (depth, network) in ad.chain_networks.iter().enumerate() {
            let tier = world.ads.networks()[network.index()].tier;
            let t = match tier {
                NetworkTier::Major => 0,
                NetworkTier::Mid => 1,
                NetworkTier::Shady => 2,
            };
            counts[bucket_of(depth)][t] += 1;
        }
    }
    let buckets = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let total: u64 = counts[i].iter().sum();
            let share = |t: usize| {
                if total == 0 {
                    0.0
                } else {
                    counts[i][t] as f64 / total as f64
                }
            };
            (label.to_string(), share(0), share(1), share(2), total)
        })
        .collect();
    LateAuctionTiers { buckets }
}

/// Campaign attribution forensics — the view the original study could not
/// produce (no ground truth): per malicious campaign, what the detection
/// framework saw of it.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignForensics {
    /// Campaign id.
    pub campaign: malvert_types::CampaignId,
    /// Behaviour class label (`drive-by` / `deceptive` / `hijack`).
    pub kind: String,
    /// Day the campaign activated.
    pub active_from: u32,
    /// Unique creatives of this campaign that were delivered.
    pub creatives_delivered: usize,
    /// Of those, how many the framework detected.
    pub creatives_detected: usize,
    /// Distinct publisher sites reached.
    pub sites_reached: usize,
    /// Total impressions observed.
    pub impressions: u64,
    /// Categories its detections fell into.
    pub categories: Vec<String>,
}

/// Builds the per-campaign forensics table for all malicious campaigns that
/// delivered at least one creative, sorted by impressions (descending).
pub fn campaign_forensics(results: &StudyResults, world: &StudyWorld) -> Vec<CampaignForensics> {
    let mut by_campaign: BTreeMap<malvert_types::CampaignId, CampaignForensics> = BTreeMap::new();
    for ad in &results.ads {
        let Some(campaign_id) = ad.truth_campaign else {
            continue;
        };
        if !ad.truly_malicious {
            continue;
        }
        let campaign = &world.ads.campaigns()[campaign_id.index()];
        let entry = by_campaign
            .entry(campaign_id)
            .or_insert_with(|| CampaignForensics {
                campaign: campaign_id,
                kind: match &campaign.behavior {
                    malvert_adnet::CampaignBehavior::DriveBy { .. } => "drive-by".to_string(),
                    malvert_adnet::CampaignBehavior::Deceptive { .. } => "deceptive".to_string(),
                    malvert_adnet::CampaignBehavior::Hijack { .. } => "hijack".to_string(),
                    malvert_adnet::CampaignBehavior::Benign { .. } => "benign".to_string(),
                },
                active_from: campaign.active_from,
                creatives_delivered: 0,
                creatives_detected: 0,
                sites_reached: 0,
                impressions: 0,
                categories: Vec::new(),
            });
        entry.creatives_delivered += 1;
        entry.impressions += ad.observations;
        let mut sites: std::collections::BTreeSet<malvert_types::SiteId> = std::collections::BTreeSet::new();
        sites.extend(ad.sites.iter().copied());
        entry.sites_reached = entry.sites_reached.max(sites.len());
        if let Some(cat) = ad.category {
            entry.creatives_detected += 1;
            let label = cat.label().to_string();
            if !entry.categories.contains(&label) {
                entry.categories.push(label);
            }
        }
    }
    let mut rows: Vec<CampaignForensics> = by_campaign.into_values().collect();
    rows.sort_by(|a, b| b.impressions.cmp(&a.impressions).then(a.campaign.cmp(&b.campaign)));
    rows
}

/// Exports the observed arbitration economy as a Graphviz DOT document:
/// nodes are ad networks (shaped by tier, the hotspot highlighted), edges
/// are observed resale transitions weighted by frequency.
pub fn arbitration_graph_dot(results: &StudyResults, world: &StudyWorld) -> String {
    use malvert_adnet::NetworkTier;
    let mut edges: BTreeMap<(AdNetworkId, AdNetworkId), u64> = BTreeMap::new();
    let mut involved: std::collections::BTreeSet<AdNetworkId> = std::collections::BTreeSet::new();
    for ad in &results.ads {
        for pair in ad.chain_networks.windows(2) {
            *edges.entry((pair[0], pair[1])).or_default() += 1;
            involved.insert(pair[0]);
            involved.insert(pair[1]);
        }
    }
    let mut out = String::from("digraph arbitration {\n  rankdir=LR;\n  node [style=filled];\n");
    for id in &involved {
        let n = &world.ads.networks()[id.index()];
        let (shape, color) = match n.tier {
            NetworkTier::Major => ("box", "lightblue"),
            NetworkTier::Mid => ("ellipse", "lightyellow"),
            NetworkTier::Shady => ("diamond", "lightcoral"),
        };
        let extra = if n.is_hotspot {
            ", penwidth=3, color=red"
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={shape}, fillcolor={color}{extra}];\n",
            id.0, n.name
        ));
    }
    for ((from, to), weight) in &edges {
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{weight}\", penwidth={:.1}];\n",
            from.0,
            to.0,
            1.0 + (*weight as f64).log2().max(0.0) / 2.0
        ));
    }
    out.push_str("}\n");
    out
}

/// Study timeline: per first-seen day, how many new unique ads appeared and
/// how the detected ones were caught. Visualizes the blacklist-lag dynamic:
/// late-appearing (fresh-infrastructure) ads shift from the Blacklists row
/// to the behavioural rows.
#[derive(Debug, Clone, Serialize)]
pub struct TimelineRow {
    /// First-seen day.
    pub day: u32,
    /// New unique ads that day.
    pub new_ads: usize,
    /// Of those, detected via blacklists.
    pub via_blacklists: usize,
    /// Detected via suspicious redirections.
    pub via_redirections: usize,
    /// Detected via behaviour (heuristics / executables / Flash / models).
    pub via_behaviour: usize,
}

/// Computes the per-day timeline.
pub fn timeline(results: &StudyResults) -> Vec<TimelineRow> {
    let mut by_day: BTreeMap<u32, TimelineRow> = BTreeMap::new();
    for ad in &results.ads {
        let row = by_day.entry(ad.first_seen.day).or_insert(TimelineRow {
            day: ad.first_seen.day,
            new_ads: 0,
            via_blacklists: 0,
            via_redirections: 0,
            via_behaviour: 0,
        });
        row.new_ads += 1;
        match ad.category {
            Some(IncidentType::Blacklists) => row.via_blacklists += 1,
            Some(IncidentType::SuspiciousRedirections) => row.via_redirections += 1,
            Some(_) => row.via_behaviour += 1,
            None => {}
        }
    }
    by_day.into_values().collect()
}

/// §4.4: the sandbox census.
#[derive(Debug, Clone, Serialize)]
pub struct SandboxReport {
    /// Iframes observed on publisher pages.
    pub total_iframes: u64,
    /// How many carried the `sandbox` attribute.
    pub sandboxed: u64,
}

impl SandboxReport {
    /// Adoption rate.
    pub fn adoption(&self) -> f64 {
        if self.total_iframes == 0 {
            0.0
        } else {
            self.sandboxed as f64 / self.total_iframes as f64
        }
    }
}

/// Computes the sandbox census.
pub fn sandbox_usage(results: &StudyResults) -> SandboxReport {
    SandboxReport {
        total_iframes: results.iframe_census.0,
        sandboxed: results.iframe_census.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    /// The tiny study is expensive enough to share across tests.
    fn shared() -> &'static (Study, StudyResults) {
        static CELL: OnceLock<(Study, StudyResults)> = OnceLock::new();
        CELL.get_or_init(|| {
            let study = Study::new(StudyConfig::tiny(31));
            let results = study.run();
            (study, results)
        })
    }

    #[test]
    fn table1_rows_sum_to_total() {
        let (_, results) = shared();
        let t = table1(results);
        assert_eq!(t.rows.len(), 6);
        let sum: usize = t.rows.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, t.total);
        assert!(t.total > 0, "no incidents detected");
        assert!(t.malicious_fraction > 0.0 && t.malicious_fraction < 0.25);
    }

    #[test]
    fn table1_blacklists_dominate() {
        let (_, results) = shared();
        let t = table1(results);
        let blacklists = t.rows[0].1;
        assert!(
            blacklists * 2 >= t.total,
            "blacklists row should dominate: {:?}",
            t.rows
        );
    }

    #[test]
    fn fig1_sorted_and_ratios_valid() {
        let (study, results) = shared();
        let rows = fig1_network_ratios(results, &study.world);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].ratio >= w[1].ratio);
        }
        for r in &rows {
            assert!(r.ratio > 0.0 && r.ratio <= 1.0);
            assert!(r.malicious <= r.total);
        }
    }

    #[test]
    fn fig1_shady_worse_than_majors() {
        let (study, results) = shared();
        let rows = fig1_network_ratios(results, &study.world);
        let tier_of = |id: AdNetworkId| study.world.ads.networks()[id.index()].tier;
        let shady_ratios: Vec<f64> = rows
            .iter()
            .filter(|r| tier_of(r.network) == malvert_adnet::NetworkTier::Shady)
            .map(|r| r.ratio)
            .collect();
        let major_ratios: Vec<f64> = rows
            .iter()
            .filter(|r| tier_of(r.network) == malvert_adnet::NetworkTier::Major)
            .map(|r| r.ratio)
            .collect();
        if !shady_ratios.is_empty() && !major_ratios.is_empty() {
            let shady_avg: f64 = shady_ratios.iter().sum::<f64>() / shady_ratios.len() as f64;
            let major_avg: f64 = major_ratios.iter().sum::<f64>() / major_ratios.len() as f64;
            assert!(
                shady_avg > major_avg,
                "shady {shady_avg:.4} <= major {major_avg:.4}"
            );
        }
    }

    #[test]
    fn fig2_shares_sum_below_one() {
        let (study, results) = shared();
        let rows = fig2_network_volume(results, &study.world);
        let sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!(sum <= 1.0 + 1e-9);
        // Most flagged networks serve a small share — the paper's point.
        let small = rows.iter().filter(|r| r.share < 0.05).count();
        assert!(small * 2 >= rows.len(), "flagged networks should be mostly small");
    }

    #[test]
    fn cluster_split_shares_sum_to_one() {
        let (study, results) = shared();
        let split = cluster_split(results, &study.world);
        let mal: f64 = split.rows.iter().map(|(_, m, _)| m).sum();
        let ads: f64 = split.rows.iter().map(|(_, _, a)| a).sum();
        assert!((mal - 1.0).abs() < 1e-9);
        assert!((ads - 1.0).abs() < 1e-9);
        // Top cluster dominates both, like the paper (82.3% / 76.6%).
        assert_eq!(split.rows[0].0, "top-10k");
        assert!(split.rows[0].1 > 0.5, "top malvert share {:?}", split.rows);
        assert!(split.rows[0].2 > 0.5, "top ad share {:?}", split.rows);
    }

    #[test]
    fn fig3_shares_and_order() {
        let (study, results) = shared();
        let rows = fig3_categories(results, &study.world);
        assert!(!rows.is_empty());
        let total: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in rows.windows(2) {
            assert!(w[0].sites >= w[1].sites);
        }
    }

    #[test]
    fn fig4_com_majority_generic_dominant() {
        let (study, results) = shared();
        let (rows, generic_share) = fig4_tlds(results, &study.world);
        assert!(!rows.is_empty());
        assert_eq!(rows[0].tld, ".com", "com must lead: {rows:?}");
        assert!(
            generic_share > 0.5,
            "generic TLD share {generic_share:.3} too low"
        );
    }

    #[test]
    fn fig5_shapes() {
        let (_, results) = shared();
        let hist = fig5_chains(results);
        assert!(!hist.benign.is_empty());
        assert!(!hist.malicious.is_empty());
        // Direct fills dominate benign traffic: auctions=0 is the mode.
        let benign_mode = hist
            .benign
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(len, _)| *len)
            .unwrap();
        assert_eq!(benign_mode, 0, "benign mode should be direct fills");
    }

    #[test]
    fn sandbox_zero_by_default() {
        let (_, results) = shared();
        let report = sandbox_usage(results);
        assert!(report.total_iframes > 0);
        assert_eq!(report.sandboxed, 0);
        assert_eq!(report.adoption(), 0.0);
    }

    #[test]
    fn repeat_participation_counts() {
        let (_, results) = shared();
        let (repeats, total) = repeat_participation(results);
        assert!(repeats <= total);
    }

    #[test]
    fn campaign_forensics_consistency() {
        let (study, results) = shared();
        let rows = campaign_forensics(results, &study.world);
        assert!(!rows.is_empty(), "some malicious campaign delivered");
        // Sorted by impressions descending.
        assert!(rows.windows(2).all(|w| w[0].impressions >= w[1].impressions));
        for row in &rows {
            assert!(row.creatives_detected <= row.creatives_delivered);
            assert!(row.impressions > 0);
            assert!(["drive-by", "deceptive", "hijack"].contains(&row.kind.as_str()));
            let campaign = &study.world.ads.campaigns()[row.campaign.index()];
            assert!(campaign.is_malicious());
        }
        // The framework detects the large majority of delivered creatives.
        let delivered: usize = rows.iter().map(|r| r.creatives_delivered).sum();
        let detected: usize = rows.iter().map(|r| r.creatives_detected).sum();
        assert!(detected * 3 >= delivered * 2, "{detected}/{delivered}");
    }

    #[test]
    fn arbitration_dot_well_formed() {
        let (study, results) = shared();
        let dot = arbitration_graph_dot(results, &study.world);
        assert!(dot.starts_with("digraph arbitration {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("->"), "graph has edges");
        // Node/edge lines parse structurally: every non-brace line ends ';'.
        for line in dot.lines().skip(1) {
            if line == "}" || line.trim().is_empty() {
                continue;
            }
            assert!(line.trim_end().ends_with(';'), "bad DOT line: {line}");
        }
    }

    #[test]
    fn timeline_accounts_for_every_ad() {
        let (_, results) = shared();
        let rows = timeline(results);
        let total: usize = rows.iter().map(|r| r.new_ads).sum();
        assert_eq!(total, results.unique_ads());
        let detected: usize = rows
            .iter()
            .map(|r| r.via_blacklists + r.via_redirections + r.via_behaviour)
            .sum();
        assert_eq!(detected, results.detected_ads().count());
        // Days are strictly increasing.
        assert!(rows.windows(2).all(|w| w[0].day < w[1].day));
    }

    #[test]
    fn late_auctions_shift_to_shady_networks() {
        let (study, results) = shared();
        let tiers = late_auction_tiers(results, &study.world);
        assert_eq!(tiers.buckets.len(), 4);
        let early = &tiers.buckets[0];
        // Find the deepest bucket with data.
        let late = tiers
            .buckets
            .iter()
            .rev()
            .find(|b| b.4 > 0)
            .expect("some bucket has hops");
        // Shady share rises with depth; major share falls (§4.3).
        assert!(
            late.3 > early.3,
            "shady share should rise with auction depth: early {:.2} late {:.2}",
            early.3,
            late.3
        );
        assert!(
            late.1 < early.1,
            "major share should fall with auction depth: early {:.2} late {:.2}",
            early.1,
            late.1
        );
        // Shares are normalized.
        for (_, a, b, c, n) in &tiers.buckets {
            if *n > 0 {
                assert!((a + b + c - 1.0).abs() < 1e-9);
            }
        }
    }
}
