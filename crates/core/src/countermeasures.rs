//! §5 countermeasure ablations.
//!
//! The paper proposes (without evaluating) two proactive defences: a shared
//! blacklist of rejected creatives across ad networks, and penalizing
//! networks caught serving malvertisements by excluding them from
//! arbitration. We implement both as re-runnable world modifications and
//! measure the effect on delivered malvertising, plus the §4.4 sandbox
//! adoption knob as the reactive defence.

use crate::analysis::table1;
use crate::study::{Study, StudyConfig, StudyResults};
use malvert_adnet::AdWorldConfig;
use malvert_types::rng::SeedTree;
use serde::Serialize;

/// Which countermeasure to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Countermeasure {
    /// Baseline: no countermeasure.
    None,
    /// §5.1: networks share submission rejections. A malicious campaign
    /// rejected by any network with `filter_strength ≥ sharing_floor` is
    /// rejected everywhere.
    SharedBlacklist {
        /// Minimum filter strength for a network's rejection to be trusted
        /// by the collective (0.0 = trust everyone's rejections).
        sharing_floor_percent: u8,
    },
    /// §4.4 / §5.2: publishers adopt the iframe `sandbox` attribute at the
    /// given rate (sandboxed ad frames cannot hijack `top.location`).
    SandboxAdoption {
        /// Percentage of publishers adopting.
        percent: u8,
    },
    /// §5.1's second proposal: networks caught delivering malvertisements
    /// are barred from buying arbitration resales "for a certain amount of
    /// time". Implemented two-phase: a baseline run identifies offenders
    /// (via the detection framework, not ground truth), then the study
    /// re-runs with those networks banned until `ban_days` (`0` = the whole
    /// window).
    ArbitrationPenalty {
        /// Ban duration in study days; `0` bans for the whole window.
        ban_days: u32,
    },
}

/// Outcome of one countermeasure run.
#[derive(Debug, Clone, Serialize)]
pub struct CountermeasureOutcome {
    /// Label of the configuration.
    pub label: String,
    /// Unique ads in the corpus.
    pub corpus_size: usize,
    /// Detected malvertisements (Table 1 total).
    pub detected: usize,
    /// Ground-truth malicious unique ads that were *delivered* at all.
    pub truly_malicious_delivered: usize,
    /// Total malicious ad impressions observed.
    pub malicious_observations: u64,
    /// `top.location` hijacks that dragged crawled pages away.
    pub hijack_exposures: u64,
    /// Hijack attempts blocked by the `sandbox` attribute.
    pub hijacks_blocked: u64,
    /// Total pipeline wall clock for this run, in microseconds (ablation
    /// sweeps compare countermeasure cost as well as effect).
    pub wall_us: u64,
}

/// Runs a study under a countermeasure and summarizes the malvertising
/// delivery outcome.
pub fn evaluate(config: &StudyConfig, countermeasure: Countermeasure) -> CountermeasureOutcome {
    let mut config = config.clone();
    let label = match countermeasure {
        Countermeasure::None => "baseline".to_string(),
        Countermeasure::SharedBlacklist {
            sharing_floor_percent,
        } => format!("shared-blacklist(floor={sharing_floor_percent}%)"),
        Countermeasure::SandboxAdoption { percent } => {
            config.web.sandbox_adoption = f64::from(percent) / 100.0;
            format!("sandbox-adoption({percent}%)")
        }
        Countermeasure::ArbitrationPenalty { ban_days } => {
            if ban_days == 0 {
                "arbitration-penalty(permanent)".to_string()
            } else {
                format!("arbitration-penalty({ban_days}d)")
            }
        }
    };
    let study = Study::new(config);
    // Countermeasures that rewire the market do so before the crawl.
    let study = match countermeasure {
        Countermeasure::SharedBlacklist {
            sharing_floor_percent,
        } => apply_shared_blacklist(study, f64::from(sharing_floor_percent) / 100.0),
        Countermeasure::ArbitrationPenalty { ban_days } => {
            apply_arbitration_penalty(study, ban_days)
        }
        _ => study,
    };
    let results = study.run();
    summarize(&label, &results)
}

fn summarize(label: &str, results: &StudyResults) -> CountermeasureOutcome {
    let t = table1(results);
    let truly_malicious_delivered = results
        .ads
        .iter()
        .filter(|a| a.truly_malicious)
        .count();
    let malicious_observations = results
        .ads
        .iter()
        .filter(|a| a.truly_malicious)
        .map(|a| a.observations)
        .sum();
    CountermeasureOutcome {
        label: label.to_string(),
        corpus_size: results.unique_ads(),
        detected: t.total,
        truly_malicious_delivered,
        malicious_observations,
        hijack_exposures: results.hijack_counts.0,
        hijacks_blocked: results.hijack_counts.1,
        wall_us: results.metrics.total_wall_us(),
    }
}

/// Rebuilds the study world with collaborative filtering: a malicious
/// campaign is accepted by a network only if *no* network above the sharing
/// floor would have rejected it. Mechanically: acceptance requires slipping
/// past the strongest filter in the sharing pool instead of just the local
/// one.
fn apply_shared_blacklist(study: Study, sharing_floor: f64) -> Study {
    use malvert_adnet::serve::MarketDirectory;
    use std::sync::Arc;

    let tree = SeedTree::new(study.config.seed);
    let networks = study.world.ads.networks().to_vec();
    let campaigns = study.world.ads.campaigns().to_vec();
    // The pool's effective filter strength: the max over sharing networks.
    let pool_strength = networks
        .iter()
        .filter(|n| n.filter_strength >= sharing_floor)
        .map(|n| n.filter_strength)
        .fold(0.0f64, f64::max);
    let accept_tree = tree.branch("acceptance");
    let mut books: Vec<Vec<malvert_types::CampaignId>> = vec![Vec::new(); networks.len()];
    for campaign in &campaigns {
        let mut rng = accept_tree.branch_idx(u64::from(campaign.id.0)).rng();
        // One pooled review per malicious campaign: if the pool catches it,
        // it is rejected everywhere (the shared blacklist).
        let pool_rng_decision = rng.chance(pool_strength);
        for network in &networks {
            let accepted = if campaign.is_malicious() {
                let local_miss = !rng.chance(network.filter_strength);
                local_miss && !pool_rng_decision
            } else {
                rng.chance(0.85)
            };
            if accepted {
                books[network.id.index()].push(campaign.id);
            }
        }
    }
    // Rebuild the world with the modified market (serve endpoints share the
    // directory, so re-registering the servers rewires everything).
    let mut world = crate::world::StudyWorld::build(
        study.config.seed,
        &study.config.web,
        &AdWorldConfig {
            network_count: study.config.ads.network_count,
            campaigns: study.config.ads.campaigns.clone(),
        },
        study.config.easylist_coverage,
        study.config.crawl.schedule.days,
    );
    let market = Arc::new(MarketDirectory {
        networks,
        campaigns,
        books,
        arbitration_banned: Default::default(),
        ban_expires_day: None,
    });
    for network in market.networks.iter() {
        world.network.register(
            network.domain.clone(),
            Arc::new(malvert_adnet::serve::ServeEndpoint::new(
                network.id,
                Arc::clone(&market),
            )),
        );
    }
    Study::from_parts(study.config, world)
}

/// Two-phase arbitration penalty: run the baseline, collect the networks
/// the detection framework caught serving malvertisements, and rebuild the
/// market with those networks barred from buying resales.
fn apply_arbitration_penalty(study: Study, ban_days: u32) -> Study {
    use malvert_adnet::serve::MarketDirectory;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    // Phase 1: baseline detection (the defender's knowledge).
    let baseline = study.run();
    let offenders: BTreeSet<malvert_types::AdNetworkId> = baseline
        .detected_ads()
        .filter_map(|a| a.serving_network)
        .collect();

    // Phase 2: rebuild the world with offenders banned from arbitration.
    let world = crate::world::StudyWorld::build(
        study.config.seed,
        &study.config.web,
        &AdWorldConfig {
            network_count: study.config.ads.network_count,
            campaigns: study.config.ads.campaigns.clone(),
        },
        study.config.easylist_coverage,
        study.config.crawl.schedule.days,
    );
    let base_market = &world.ads.market;
    let market = Arc::new(MarketDirectory {
        networks: base_market.networks.clone(),
        campaigns: base_market.campaigns.clone(),
        books: base_market.books.clone(),
        arbitration_banned: offenders,
        ban_expires_day: if ban_days == 0 { None } else { Some(ban_days) },
    });
    let mut world = world;
    for network in market.networks.iter() {
        world.network.register(
            network.domain.clone(),
            Arc::new(malvert_adnet::serve::ServeEndpoint::new(
                network.id,
                Arc::clone(&market),
            )),
        );
    }
    Study::from_parts(study.config, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn shared_blacklist_reduces_delivery() {
        let config = StudyConfig::tiny(41);
        let baseline = evaluate(&config, Countermeasure::None);
        let shared = evaluate(
            &config,
            Countermeasure::SharedBlacklist {
                sharing_floor_percent: 50,
            },
        );
        assert!(
            shared.truly_malicious_delivered < baseline.truly_malicious_delivered,
            "shared blacklist should reduce delivered malicious ads: {} -> {}",
            baseline.truly_malicious_delivered,
            shared.truly_malicious_delivered
        );
        assert!(baseline.truly_malicious_delivered > 0);
    }

    #[test]
    fn sandbox_adoption_defuses_hijacks_not_delivery() {
        let config = StudyConfig::tiny(43);
        let baseline = evaluate(&config, Countermeasure::None);
        let sandboxed = evaluate(&config, Countermeasure::SandboxAdoption { percent: 100 });
        // Sandbox does not stop delivery (ads still render)...
        assert!(sandboxed.corpus_size > 0);
        // ...but it eliminates user-facing hijack exposure; the attempts
        // show up as blocked instead.
        assert_eq!(
            sandboxed.hijack_exposures, 0,
            "full sandbox adoption must zero hijack exposure"
        );
        if baseline.hijack_exposures > 0 {
            assert!(sandboxed.hijacks_blocked > 0);
        }
        assert_eq!(baseline.hijacks_blocked, 0);
    }

    #[test]
    fn arbitration_penalty_reduces_malicious_impressions() {
        let config = StudyConfig::tiny(53);
        let baseline = evaluate(&config, Countermeasure::None);
        let penalized = evaluate(&config, Countermeasure::ArbitrationPenalty { ban_days: 0 });
        // Banned offenders stop receiving resale traffic, so malicious
        // impressions must drop (delivery may persist through publishers'
        // direct contracts with shady networks — the penalty is partial,
        // which is the honest result).
        assert!(
            penalized.malicious_observations < baseline.malicious_observations,
            "penalty should cut malicious impressions: {} -> {}",
            baseline.malicious_observations,
            penalized.malicious_observations
        );
        // A ban that expires mid-window lets some malicious traffic return:
        // weaker than the permanent ban, still no worse than baseline.
        let brief = evaluate(&config, Countermeasure::ArbitrationPenalty { ban_days: 2 });
        assert!(brief.malicious_observations >= penalized.malicious_observations);
        assert!(brief.malicious_observations <= baseline.malicious_observations);
    }

    #[test]
    fn outcome_labels() {
        let config = StudyConfig::tiny(47);
        let o = evaluate(&config, Countermeasure::None);
        assert_eq!(o.label, "baseline");
    }
}
