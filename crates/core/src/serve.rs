//! Service mode: the continuous-scanning daemon behind `malvert serve`.
//!
//! The paper ran a three-month *rolling* measurement; the batch study
//! reproduces its analyses but not its operational shape. This module is
//! that shape: a long-running daemon that ingests a seed-deterministic
//! impression stream ([`malvert_websim::stream`]), keeps a bounded
//! verdict cache with TTL-based re-scanning, and answers "is this
//! creative flagged, and why" queries with full incident
//! [`Provenance`](malvert_trace::Provenance) — against live state, without
//! re-running a study.
//!
//! # Determinism
//!
//! Verdict state is a pure function of `(seed, stream, config)`:
//!
//! * **Admission is planned, not raced.** At every engine shard boundary
//!   (workers parked) the daemon computes the next window's *admission
//!   plan* — which impressions hit the cache, which become scans, which
//!   are shed by backpressure — from the cache state and the stream
//!   prefix alone. Workers only execute the plan.
//! * **Scans are independently seeded.** Each scan derives its RNG from
//!   `(creative key, scan day)`, never from worker identity or arrival
//!   order.
//! * **Folding is positional.** Scan results are slotted by stream index
//!   and applied to the cache in index order at the boundary, so the
//!   cache after shard `n` is identical at any worker count.
//!
//! # Backpressure
//!
//! The scan queue is bounded per shard ([`ServeConfig::queue_capacity`]).
//! New creatives beyond capacity are *shed* (counted, scanned when
//! re-encountered); expired verdicts beyond capacity keep serving stale
//! answers and stay in the re-scan backlog — graceful degradation instead
//! of unbounded queueing, exactly the behaviour a fault-injected
//! (`--faults`) stream needs.
//!
//! # Checkpointing
//!
//! The daemon snapshots its whole deterministic state ([`ServeSnapshot`])
//! at shard boundaries; a killed daemon resumed from the snapshot replays
//! the remaining stream to byte-identical final state.

use crate::checkpoint::ScriptBase;
use crate::metrics::RunCounters;
use crate::world::StudyWorld;
use malvert_adnet::AdWorldConfig;
use malvert_crawler::{ScriptCache, ScriptEngine, ScriptStats};
use malvert_engine::{run_fold_observed, Boundary, EngineConfig, EngineStats, SnapshotStore};
use malvert_net::FaultProfile;
use malvert_oracle::{behavior_fingerprint, Incident, IncidentType, Oracle, OracleStats};
use malvert_trace::{EngineBalance, MetricsRegistry, Provenance, VmMeter};
use malvert_types::rng::mix_label;
use malvert_types::{SimTime, Url};
use malvert_websim::{ImpressionStream, StreamConfig, WebConfig};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Serve snapshot layout version; bumped on incompatible change.
pub const SERVE_SNAPSHOT_VERSION: u32 = 1;

/// The snapshot document name inside a serve checkpoint directory (kept
/// distinct from the batch study's `state.json`).
const SERVE_DOC: &str = "serve.json";

/// Domain-separation constant for serve config fingerprints (ASCII
/// `malvtsrv`).
const FINGERPRINT_DOMAIN: u64 = 0x6d61_6c76_7473_7276;

/// Domain-separation constant for creative cache keys (ASCII `srvckey!`).
const KEY_DOMAIN: u64 = 0x7372_7663_6b65_7921;

/// Queries waiting at a boundary beyond this are rejected at submission —
/// the query channel is bounded like every other queue in the daemon.
const QUERY_QUEUE_CAPACITY: usize = 1024;

/// What the daemon measures and how it degrades — everything the verdict
/// state is a function of (along with the seed and stream shape).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root seed — world and stream both derive from it.
    pub seed: u64,
    /// Web population backing the world (oracle services scale with it).
    pub web: WebConfig,
    /// Ad economy population.
    pub ads: AdWorldConfig,
    /// Shape of the replayed impression stream.
    pub stream: StreamConfig,
    /// Impressions to ingest before the daemon reports (a replayed stream
    /// is unbounded; this is the replay horizon).
    pub impressions: u64,
    /// Worker threads for scan execution.
    pub workers: usize,
    /// Seed-driven fault injection on the simulated network.
    pub faults: Option<FaultProfile>,
    /// Verdict-cache capacity in entries (clamped to at least 1). The
    /// daemon's only per-creative state; memory stays bounded by it.
    pub cache_capacity: usize,
    /// Days a verdict stays fresh; an expired verdict is re-scanned when
    /// re-encountered or swept from the backlog. `0` re-scans on every
    /// encounter.
    pub ttl_days: u32,
    /// Scan-queue bound per ingest shard — the backpressure knob.
    pub queue_capacity: usize,
    /// Script compilation cache capacity for oracle visits.
    pub script_cache: usize,
    /// Script execution engine for oracle visits.
    pub script_engine: ScriptEngine,
    /// Behavioural models seeded into the scan engines before the daemon
    /// starts (the "previous work" the paper's AV models came from) —
    /// same knob as the batch study's.
    pub model_seed_count: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 2014,
            web: WebConfig::default(),
            ads: AdWorldConfig::default(),
            stream: StreamConfig::default(),
            impressions: 8192,
            workers: 8,
            faults: None,
            cache_capacity: 65_536,
            ttl_days: 7,
            queue_capacity: 256,
            script_cache: 4096,
            script_engine: ScriptEngine::default(),
            model_seed_count: 8,
        }
    }
}

impl ServeConfig {
    /// A miniature configuration for tests: small world, short stream.
    pub fn tiny(seed: u64) -> Self {
        ServeConfig {
            seed,
            web: WebConfig {
                ranking_universe: 10_000,
                top_slice: 30,
                bottom_slice: 30,
                random_slice: 30,
                security_feed: 10,
                ad_network_count: 40,
                sandbox_adoption: 0.0,
            },
            stream: StreamConfig {
                networks: 40,
                publishers: 50,
                slots: 2,
                per_day: 64,
            },
            impressions: 512,
            workers: 4,
            cache_capacity: 4096,
            ttl_days: 2,
            queue_capacity: 64,
            model_seed_count: 4,
            ..ServeConfig::default()
        }
    }
}

/// A structural fingerprint of a serve configuration (same scheme as the
/// batch study's): a snapshot is only resumable under the fingerprint it
/// was written with. The worker count is excluded — verdict state is
/// byte-identical at any worker count, so a snapshot written by an
/// 8-worker daemon must resume under 1 worker and vice versa.
pub fn serve_fingerprint(config: &ServeConfig) -> u64 {
    let mut structural = config.clone();
    structural.workers = 0;
    mix_label(FINGERPRINT_DOMAIN, format!("{structural:?}").as_bytes())
}

/// The stable cache key of a creative slot URL.
pub fn creative_cache_key(url: &Url) -> u64 {
    mix_label(KEY_DOMAIN, url.to_string().as_bytes())
}

/// One cached verdict: everything the daemon retains about a creative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedVerdict {
    /// [`creative_cache_key`] of the slot URL.
    pub key: u64,
    /// The slot-request URL the verdict is about.
    pub url: String,
    /// Day of the first scan.
    pub first_scan_day: u32,
    /// Day of the most recent scan — the TTL anchor.
    pub last_scan_day: u32,
    /// Scans performed (1 + re-scans).
    pub scans: u32,
    /// Stream index that last touched this entry (hit or scan) — the
    /// eviction recency stamp. Deterministic: assigned at plan time.
    pub last_touch: u64,
    /// Whether any oracle component flagged the creative at the last scan.
    pub flagged: bool,
    /// The Table 1 category (first-match precedence), when flagged.
    pub category: Option<IncidentType>,
    /// Every incident of the last scan, with full provenance.
    pub incidents: Vec<Incident>,
}

/// Deterministic serve counters — the daemon's work ledger, persisted in
/// snapshots and surfaced through [`RunCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Impressions ingested from the stream.
    #[serde(default)]
    pub ingested: u64,
    /// Impressions answered by a fresh cached verdict.
    #[serde(default)]
    pub cache_hits: u64,
    /// Impressions answered by a stale (TTL-expired) verdict while the
    /// re-scan waited — the graceful-degradation path.
    #[serde(default)]
    pub stale_serves: u64,
    /// Scans executed (first scans + re-scans).
    #[serde(default)]
    pub scans: u64,
    /// TTL-driven re-scans among the scans.
    #[serde(default)]
    pub rescans: u64,
    /// Scan candidates dropped because the shard's scan queue was full.
    #[serde(default)]
    pub shed: u64,
    /// Cache entries evicted to hold the capacity bound.
    #[serde(default)]
    pub evictions: u64,
    /// TTL-expired entries still unscanned at the last boundary (gauge).
    #[serde(default)]
    pub rescan_backlog: u64,
    /// Queries answered.
    #[serde(default)]
    pub queries: u64,
}

/// One parked (or completed) daemon: the run identity plus the exact
/// deterministic state at a shard boundary. Also the byte-identity
/// surface: two runs agree iff their snapshots agree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Snapshot layout version ([`SERVE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The serve seed.
    pub seed: u64,
    /// [`serve_fingerprint`] of the configuration.
    pub fingerprint: u64,
    /// First unprocessed stream index.
    pub next_impression: u64,
    /// Work ledger at the boundary.
    pub counters: ServeCounters,
    /// The verdict cache, sorted by key.
    pub cache: Vec<CachedVerdict>,
    /// Script-cache counter totals at the boundary (deterministic lookup
    /// total; the hit/miss split is scheduling-dependent as everywhere).
    #[serde(default)]
    pub script: ScriptBase,
}

impl ServeSnapshot {
    /// Writes this snapshot as the store's `serve.json`. Returns the
    /// serialized byte count.
    pub fn save(&self, store: &SnapshotStore) -> io::Result<u64> {
        store.save(SERVE_DOC, self)
    }

    /// Loads a store's `serve.json`; `Ok(None)` when none exists yet.
    pub fn load(store: &SnapshotStore) -> io::Result<Option<ServeSnapshot>> {
        store.load(SERVE_DOC)
    }

    /// Checks the snapshot belongs to `(seed, fingerprint)`.
    pub fn validate(&self, seed: u64, fingerprint: u64) -> Result<(), String> {
        if self.version != SERVE_SNAPSHOT_VERSION {
            return Err(format!(
                "serve snapshot version {} (this build writes {SERVE_SNAPSHOT_VERSION})",
                self.version
            ));
        }
        if self.seed != seed {
            return Err(format!(
                "serve snapshot seed {} != configured seed {seed}",
                self.seed
            ));
        }
        if self.fingerprint != fingerprint {
            return Err(format!(
                "serve snapshot fingerprint {:016x} != configured fingerprint {fingerprint:016x}",
                self.fingerprint
            ));
        }
        Ok(())
    }

    /// The deterministic state as canonical JSON — what the byte-identity
    /// tests and `--state-out` compare. Scheduling-dependent script-cache
    /// splits are zeroed the same way stripped run summaries zero them,
    /// and so is the answered-query tally: queries are an interaction with
    /// the daemon, not part of the `(seed, stream, config)` state.
    pub fn state_json(&self) -> String {
        let mut stripped = self.clone();
        stripped.counters.queries = 0;
        stripped.script.cache_hits = 0;
        stripped.script.cache_misses = 0;
        stripped.script.bytecode_dispatches = 0;
        stripped.script.inline_cache_hits = 0;
        stripped.script.inline_cache_misses = 0;
        stripped.script.shape_hits = 0;
        stripped.script.shape_transitions = 0;
        serde_json::to_string_pretty(&stripped).expect("serve snapshot serializes")
    }
}

/// The answer to one flagged-or-not query, with full provenance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryAnswer {
    /// The queried slot URL.
    pub url: String,
    /// Its [`creative_cache_key`].
    pub key: u64,
    /// Whether the daemon has a verdict for it at all.
    pub known: bool,
    /// Whether the last scan flagged it.
    pub flagged: bool,
    /// The Table 1 category label, when flagged.
    pub category: Option<String>,
    /// Day of the verdict's last scan.
    pub last_scan_day: Option<u32>,
    /// Whether the verdict is TTL-expired (a stale answer awaiting
    /// re-scan).
    pub stale: bool,
    /// The provenance of every incident behind the verdict.
    pub provenance: Vec<Provenance>,
    /// The shard boundary that answered (deterministic interleaving
    /// marker).
    pub answered_at_shard: u64,
    /// The stream cursor at that boundary.
    pub answered_at_impression: u64,
}

struct PendingQuery {
    not_before_shard: u64,
    url: String,
    reply: mpsc::Sender<QueryAnswer>,
}

/// The daemon's request channel: clonable, thread-safe, bounded. Queries
/// are answered at shard boundaries — deterministic points in the stream —
/// so interleaved queries observe the same state at any worker count.
#[derive(Clone)]
pub struct QueryHandle {
    queue: Arc<Mutex<VecDeque<PendingQuery>>>,
}

impl QueryHandle {
    fn new() -> QueryHandle {
        QueryHandle {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Submits a query to be answered at the next shard boundary. Returns
    /// the receiving end of the reply channel, or an error when the query
    /// queue is full (the daemon sheds queries rather than queueing
    /// unboundedly).
    pub fn ask(&self, url: &str) -> Result<mpsc::Receiver<QueryAnswer>, String> {
        self.ask_at(0, url)
    }

    /// Submits a query to be answered at the first shard boundary whose
    /// ordinal is at least `shard` (1-based; 0 = next boundary). The
    /// deterministic way to interleave queries with ingest.
    pub fn ask_at(&self, shard: u64, url: &str) -> Result<mpsc::Receiver<QueryAnswer>, String> {
        let mut queue = self.queue.lock();
        if queue.len() >= QUERY_QUEUE_CAPACITY {
            return Err(format!("query queue full ({QUERY_QUEUE_CAPACITY} pending)"));
        }
        let (tx, rx) = mpsc::channel();
        queue.push_back(PendingQuery {
            not_before_shard: shard,
            url: url.to_string(),
            reply: tx,
        });
        Ok(rx)
    }
}

/// One admitted scan: the creative, the slot URL, the scan day, and
/// whether it refreshes an existing verdict.
#[derive(Debug, Clone)]
struct ScanTask {
    key: u64,
    url: Url,
    day: u32,
    rescan: bool,
    /// Recency stamp the cache entry gets when the result folds in.
    touch: u64,
}

/// The result of one executed scan, slotted back by stream position.
struct ScanOutcome {
    task: ScanTask,
    flagged: bool,
    category: Option<IncidentType>,
    incidents: Vec<Incident>,
}

/// The sequentially-folded daemon state.
struct ServeState {
    cache: BTreeMap<u64, CachedVerdict>,
    counters: ServeCounters,
    /// Scan outcomes of the in-flight shard, keyed by job index so the
    /// boundary applies them in stream order regardless of scheduling.
    pending: BTreeMap<usize, Vec<ScanOutcome>>,
    /// `(key, day)` of every applied scan in firing order — only recorded
    /// under [`ServeOptions::record_scan_log`].
    scan_log: Vec<(u64, u32)>,
}

/// Execution options mirroring the batch study's [`RunOptions`]
/// (checkpointing, metering, abort hook); none affect verdict state.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Impressions per ingest shard (plan/checkpoint/query granule).
    pub shard_size: usize,
    /// Checkpoint directory (`None` = no snapshots).
    pub checkpoint: Option<PathBuf>,
    /// Snapshot every N shard boundaries.
    pub checkpoint_every: u64,
    /// Park after N shard boundaries (kill/resume hook).
    pub abort_after_shards: Option<u64>,
    /// Run-health registry ([`MetricsRegistry::disabled`] = off).
    pub metrics: MetricsRegistry,
    /// Live stderr heartbeat at shard boundaries.
    pub progress: bool,
    /// Record `(key, day)` of every scan in firing order into the report
    /// (test hook for re-scan ordering; off by default — a daemon must not
    /// grow per-scan state).
    pub record_scan_log: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shard_size: 1024,
            checkpoint: None,
            checkpoint_every: 1,
            abort_after_shards: None,
            metrics: MetricsRegistry::disabled(),
            progress: false,
            record_scan_log: false,
        }
    }
}

/// Builder for [`ServeDaemon`] — the single front door, mirroring
/// [`StudyBuilder`](crate::study::StudyBuilder).
#[derive(Debug, Default, Clone)]
pub struct ServeBuilder {
    config: ServeConfig,
    options: ServeOptions,
    resume: Option<PathBuf>,
}

impl ServeBuilder {
    /// Replaces the whole configuration.
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the replay horizon in impressions.
    pub fn impressions(mut self, n: u64) -> Self {
        self.config.impressions = n;
        self
    }

    /// Sets the stream shape.
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.config.stream = stream;
        self
    }

    /// Sets the scan worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Attaches (or clears) fault injection.
    pub fn faults(mut self, faults: Option<FaultProfile>) -> Self {
        self.config.faults = faults;
        self
    }

    /// Sets the verdict-cache capacity.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.config.cache_capacity = entries;
        self
    }

    /// Sets the verdict TTL in days.
    pub fn ttl_days(mut self, days: u32) -> Self {
        self.config.ttl_days = days;
        self
    }

    /// Sets the per-shard scan-queue bound.
    pub fn queue_capacity(mut self, scans: usize) -> Self {
        self.config.queue_capacity = scans;
        self
    }

    /// Sets the ingest shard size.
    pub fn shard_size(mut self, impressions: usize) -> Self {
        self.options.shard_size = impressions.max(1);
        self
    }

    /// Enables checkpointing into `dir`.
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>) -> Self {
        self.options.checkpoint = Some(dir.into());
        self
    }

    /// Snapshots every `n` shard boundaries.
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.options.checkpoint_every = n.max(1);
        self
    }

    /// Parks the daemon after `n` shard boundaries.
    pub fn abort_after_shards(mut self, n: u64) -> Self {
        self.options.abort_after_shards = Some(n);
        self
    }

    /// Attaches a run-health metrics registry.
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.options.metrics = metrics;
        self
    }

    /// Renders a live stderr heartbeat at shard boundaries.
    pub fn progress(mut self, on: bool) -> Self {
        self.options.progress = on;
        self
    }

    /// Records every scan's `(key, day)` in firing order into the report
    /// (test hook; keep off in real daemons).
    pub fn record_scan_log(mut self, on: bool) -> Self {
        self.options.record_scan_log = on;
        self
    }

    /// Resumes from the snapshot in `dir`; keeps checkpointing there
    /// unless another directory was set.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume = Some(dir.into());
        self
    }

    /// Builds the world and assembles the daemon; loads and validates the
    /// resume snapshot when one was requested.
    pub fn build(self) -> Result<ServeDaemon, String> {
        let ServeBuilder {
            config,
            mut options,
            resume,
        } = self;
        let resume_state = match resume {
            Some(dir) => {
                let store = SnapshotStore::open(&dir).map_err(|e| {
                    format!("cannot open checkpoint directory {}: {e}", dir.display())
                })?;
                let snapshot = ServeSnapshot::load(&store)
                    .map_err(|e| format!("cannot read serve snapshot in {}: {e}", dir.display()))?
                    .ok_or_else(|| {
                        format!(
                            "no serve snapshot in checkpoint directory {}",
                            dir.display()
                        )
                    })?;
                snapshot
                    .validate(config.seed, serve_fingerprint(&config))
                    .map_err(|e| format!("serve snapshot does not match this daemon: {e}"))?;
                if options.checkpoint.is_none() {
                    options.checkpoint = Some(dir);
                }
                Some(snapshot)
            }
            None => None,
        };
        let mut world = StudyWorld::build(
            config.seed,
            &config.web,
            &config.ads,
            1.0,
            // Blacklist-feed lags scale with the observation window.
            (config.impressions / config.stream.per_day.max(1)).max(1) as u32,
        );
        world.network.set_fault_profile(config.faults);
        let stream =
            ImpressionStream::new(world.tree.branch("serve-stream"), config.stream.clone());
        Ok(ServeDaemon {
            config,
            options,
            world,
            stream,
            resume_state,
            queries: QueryHandle::new(),
        })
    }
}

/// What a completed replay reports: final deterministic state plus the
/// usual run counters.
#[derive(Debug)]
pub struct ServeReport {
    /// The final deterministic state (same layout the checkpoints write).
    pub snapshot: ServeSnapshot,
    /// Pipeline counters with the `serve_*` family populated.
    pub counters: RunCounters,
    /// Shard boundaries crossed during this process's run.
    pub shards: u64,
    /// Wall-clock time of this process's run.
    pub wall: Duration,
    /// `(key, day)` of every scan this process applied, in firing order —
    /// empty unless [`ServeBuilder::record_scan_log`] was set. A resumed
    /// daemon's log covers only the shards it ran itself.
    pub scan_log: Vec<(u64, u32)>,
}

/// The continuous-scanning daemon. Build through [`ServeDaemon::builder`];
/// drive with [`ServeDaemon::run`]; query through
/// [`ServeDaemon::handle`].
pub struct ServeDaemon {
    /// The configuration the verdict state is a function of.
    pub config: ServeConfig,
    options: ServeOptions,
    world: StudyWorld,
    stream: ImpressionStream,
    resume_state: Option<ServeSnapshot>,
    queries: QueryHandle,
}

impl ServeDaemon {
    /// Starts building a daemon.
    pub fn builder() -> ServeBuilder {
        ServeBuilder::default()
    }

    /// The daemon's query channel. Clone freely; queries are answered at
    /// shard boundaries.
    pub fn handle(&self) -> QueryHandle {
        self.queries.clone()
    }

    /// The slot URL an impression resolves to.
    fn impression_url(&self, imp: malvert_websim::Impression) -> Url {
        self.world.ads.serve_url(
            malvert_types::AdNetworkId(imp.network % self.world.ads.networks().len() as u32),
            imp.publisher,
            imp.slot,
        )
    }

    /// Whether a verdict is still fresh at `day` (a zero TTL re-scans on
    /// every encounter).
    fn fresh(&self, verdict: &CachedVerdict, day: u32) -> bool {
        self.config.ttl_days > 0 && day.saturating_sub(verdict.last_scan_day) < self.config.ttl_days
    }

    /// Seeds the scan engines' model database exactly the way the batch
    /// study does: a pre-run pass visits serve URLs until it confirms
    /// `model_seed_count` malicious behaviours by ground truth.
    fn seed_models(&self) -> Vec<u64> {
        if self.config.model_seed_count == 0 {
            return Vec::new();
        }
        let malicious_domains: Vec<String> = self
            .world
            .ads
            .malicious_ground_truth()
            .iter()
            .flat_map(|(_, ds, _)| ds.iter().map(|d| d.to_string()))
            .collect();
        let oracle = Oracle::builder(
            &self.world.network,
            &self.world.blacklists,
            &self.world.scanner,
        )
        .seeds(self.world.tree)
        .build();
        let mut models = Vec::new();
        'outer: for network_idx in 0..self.world.ads.networks().len() as u32 {
            for slot in 0..10usize {
                let url = self.world.ads.serve_url(
                    malvert_types::AdNetworkId(network_idx),
                    90_000 + slot as u32,
                    slot,
                );
                let visit = oracle.honeyclient_visit(&url, SimTime::at(70, 4));
                let confirmed = visit
                    .capture
                    .hosts()
                    .iter()
                    .any(|h| malicious_domains.contains(&h.to_string()));
                if confirmed {
                    let fp = behavior_fingerprint(&visit);
                    if !models.contains(&fp) {
                        models.push(fp);
                        if models.len() >= self.config.model_seed_count {
                            break 'outer;
                        }
                    }
                }
            }
        }
        models
    }

    /// Plans the admission of one stream window: cache hits are tallied,
    /// scans queued (bounded), overflow shed, and the re-scan backlog
    /// swept — all from `(cache, stream prefix)` alone, so the plan is
    /// identical at any worker count. Mutates `state` counters and touch
    /// stamps; returns the per-job task map.
    fn plan_window(
        &self,
        state: &mut ServeState,
        window: std::ops::Range<u64>,
    ) -> HashMap<usize, Vec<ScanTask>> {
        let mut scans: Vec<ScanTask> = Vec::new();
        let mut planned: BTreeSet<u64> = BTreeSet::new();
        let capacity = self.config.queue_capacity.max(1);
        let window_day = if window.start < window.end {
            self.stream.impression(window.start).day
        } else {
            0
        };
        for index in window.clone() {
            let imp = self.stream.impression(index);
            let url = self.impression_url(imp);
            let key = creative_cache_key(&url);
            state.counters.ingested += 1;
            match state.cache.get_mut(&key) {
                Some(v) if self.fresh(v, imp.day) => {
                    state.counters.cache_hits += 1;
                    v.last_touch = index;
                }
                Some(v) => {
                    // Expired: serve the stale verdict now, queue a re-scan
                    // if the shard still has budget.
                    state.counters.stale_serves += 1;
                    v.last_touch = index;
                    if planned.insert(key) {
                        if scans.len() < capacity {
                            scans.push(ScanTask {
                                key,
                                url,
                                day: imp.day,
                                rescan: true,
                                touch: index,
                            });
                        } else {
                            // The stale verdict keeps serving; the entry
                            // falls to the backlog gauge below.
                            state.counters.shed += 1;
                            planned.remove(&key);
                        }
                    }
                }
                None => {
                    if planned.insert(key) {
                        if scans.len() < capacity {
                            scans.push(ScanTask {
                                key,
                                url,
                                day: imp.day,
                                rescan: false,
                                touch: index,
                            });
                        } else {
                            // Shed: the impression passes unscanned; the
                            // creative is picked up when re-encountered.
                            state.counters.shed += 1;
                            planned.remove(&key);
                        }
                    }
                }
            }
        }
        // Backlog sweep: expired entries the window did not touch, oldest
        // verdict first (key-tiebroken) — the deterministic firing order.
        let mut backlog: Vec<(u32, u64)> = state
            .cache
            .values()
            .filter(|v| !self.fresh(v, window_day) && !planned.contains(&v.key))
            .map(|v| (v.last_scan_day, v.key))
            .collect();
        backlog.sort_unstable();
        for &(_, key) in &backlog {
            if scans.len() >= capacity {
                break;
            }
            let v = &state.cache[&key];
            scans.push(ScanTask {
                key,
                url: Url::parse(&v.url)
                    .unwrap_or_else(|_| panic!("cached verdict URL must re-parse: {}", v.url)),
                day: window_day,
                rescan: true,
                touch: v.last_touch,
            });
            planned.insert(key);
        }
        // Gauge: expired entries still unscanned after planning.
        state.counters.rescan_backlog = state
            .cache
            .values()
            .filter(|v| !self.fresh(v, window_day) && !planned.contains(&v.key))
            .count() as u64;

        // Deal scans round-robin over the window's job indices so the
        // engine spreads them across workers.
        let mut tasks: HashMap<usize, Vec<ScanTask>> = HashMap::new();
        let width = (window.end - window.start).max(1);
        for (i, task) in scans.into_iter().enumerate() {
            let job = (window.start + (i as u64 % width)) as usize;
            tasks.entry(job).or_default().push(task);
        }
        tasks
    }

    /// Applies a shard's scan outcomes to the cache in stream order, then
    /// enforces the capacity bound (least-recently-touched first).
    fn fold_boundary(&self, state: &mut ServeState) {
        let pending = std::mem::take(&mut state.pending);
        for (_, outcomes) in pending {
            for out in outcomes {
                state.counters.scans += 1;
                if out.task.rescan {
                    state.counters.rescans += 1;
                }
                if self.options.record_scan_log {
                    state.scan_log.push((out.task.key, out.task.day));
                }
                let entry = state
                    .cache
                    .entry(out.task.key)
                    .or_insert_with(|| CachedVerdict {
                        key: out.task.key,
                        url: out.task.url.to_string(),
                        first_scan_day: out.task.day,
                        last_scan_day: out.task.day,
                        scans: 0,
                        last_touch: out.task.touch,
                        flagged: false,
                        category: None,
                        incidents: Vec::new(),
                    });
                entry.last_scan_day = out.task.day;
                entry.scans += 1;
                entry.last_touch = entry.last_touch.max(out.task.touch);
                entry.flagged = out.flagged;
                entry.category = out.category;
                entry.incidents = out.incidents;
            }
        }
        let capacity = self.config.cache_capacity.max(1);
        while state.cache.len() > capacity {
            let victim = state
                .cache
                .values()
                .map(|v| (v.last_touch, v.key))
                .min()
                .expect("cache is non-empty");
            state.cache.remove(&victim.1);
            state.counters.evictions += 1;
        }
    }

    /// Answers every pending query whose scheduled boundary has arrived.
    fn answer_queries(&self, state: &mut ServeState, shard: u64, cursor: u64, last_day: u32) {
        let mut queue = self.queries.queue.lock();
        let mut keep = VecDeque::new();
        while let Some(q) = queue.pop_front() {
            if q.not_before_shard > shard {
                keep.push_back(q);
                continue;
            }
            state.counters.queries += 1;
            let key = match Url::parse(&q.url) {
                Ok(url) => creative_cache_key(&url),
                Err(_) => mix_label(KEY_DOMAIN, q.url.as_bytes()),
            };
            let answer = match state.cache.get(&key) {
                Some(v) => QueryAnswer {
                    url: q.url,
                    key,
                    known: true,
                    flagged: v.flagged,
                    category: v.category.map(|c| c.label().to_string()),
                    last_scan_day: Some(v.last_scan_day),
                    stale: !self.fresh(v, last_day),
                    provenance: v.incidents.iter().map(|i| i.provenance.clone()).collect(),
                    answered_at_shard: shard,
                    answered_at_impression: cursor,
                },
                None => QueryAnswer {
                    url: q.url,
                    key,
                    known: false,
                    flagged: false,
                    category: None,
                    last_scan_day: None,
                    stale: false,
                    provenance: Vec::new(),
                    answered_at_shard: shard,
                    answered_at_impression: cursor,
                },
            };
            // A dropped receiver is fine — the asker lost interest.
            let _ = q.reply.send(answer);
        }
        *queue = keep;
    }

    /// Replays the stream to the horizon. Returns `None` when the daemon
    /// parked at a shard boundary ([`ServeOptions::abort_after_shards`])
    /// with its snapshot written; a new daemon built with
    /// [`ServeBuilder::resume`] picks up from it.
    pub fn run(&self) -> Option<ServeReport> {
        let started = Instant::now();
        let total = self.config.impressions as usize;
        let script_stats = ScriptStats::new();
        let script_cache = ScriptCache::new(self.config.script_cache, script_stats.clone());
        let oracle_stats = OracleStats::new();
        let oracle = Oracle::builder(
            &self.world.network,
            &self.world.blacklists,
            &self.world.scanner,
        )
        .known_models(self.seed_models())
        .seeds(self.world.tree)
        .stats(oracle_stats.clone())
        .script_cache(script_cache)
        .script_engine(self.config.script_engine)
        .build();

        let (mut state, start, script_base) = match &self.resume_state {
            Some(snap) => (
                ServeState {
                    cache: snap.cache.iter().map(|v| (v.key, v.clone())).collect(),
                    counters: snap.counters,
                    pending: BTreeMap::new(),
                    scan_log: Vec::new(),
                },
                (snap.next_impression as usize).min(total),
                snap.script,
            ),
            None => (
                ServeState {
                    cache: BTreeMap::new(),
                    counters: ServeCounters::default(),
                    pending: BTreeMap::new(),
                    scan_log: Vec::new(),
                },
                0,
                ScriptBase::default(),
            ),
        };

        let store =
            self.options.checkpoint.as_deref().map(|dir| {
                SnapshotStore::open(dir).expect("checkpoint directory must be creatable")
            });
        let every = self.options.checkpoint_every.max(1);
        let abort = self.options.abort_after_shards;
        let seed = self.config.seed;
        let fingerprint = serve_fingerprint(&self.config);
        let shard_size = self.options.shard_size.max(1);
        let engine = EngineConfig::new(self.config.workers, shard_size);
        let registry = &self.options.metrics;
        let estats = registry
            .is_enabled()
            .then(|| EngineStats::new(self.config.workers));
        let sampler = registry.stage(
            "serve",
            start as u64,
            total as u64,
            shard_size as u64,
            self.options.progress,
        );

        // The first window's plan is computed before workers start; each
        // boundary then plans the next window with workers parked.
        let plan: Arc<RwLock<HashMap<usize, Vec<ScanTask>>>> =
            Arc::new(RwLock::new(HashMap::new()));
        if start < total {
            // Guarded like the boundary planner: a no-op replay (resuming an
            // already-complete run) must not re-plan an empty window, which
            // would recompute the backlog gauge against day 0.
            let first_window = start as u64..((start + shard_size).min(total)) as u64;
            *plan.write() = self.plan_window(&mut state, first_window);
        }

        let snapshot_of = |state: &ServeState, next: usize, script: ScriptBase| ServeSnapshot {
            version: SERVE_SNAPSHOT_VERSION,
            seed,
            fingerprint,
            next_impression: next as u64,
            counters: state.counters,
            cache: state.cache.values().cloned().collect(),
            script,
        };

        let mut shard = 0u64;
        let worker_plan = Arc::clone(&plan);
        let outcome = run_fold_observed(
            &engine,
            estats.as_ref(),
            start..total,
            state,
            |_worker| (),
            |(), job| {
                let tasks = {
                    let plan = worker_plan.read();
                    plan.get(&job).cloned().unwrap_or_default()
                };
                let mut outcomes = Vec::with_capacity(tasks.len());
                for task in tasks {
                    let seeds = self
                        .world
                        .tree
                        .branch("serve")
                        .branch_idx(task.key)
                        .branch_idx(task.day as u64);
                    let time = SimTime::at(task.day, 0);
                    let visit = oracle.honeyclient_visit_seeded(&task.url, time, seeds);
                    let incidents = oracle.classify_visit(&visit, time);
                    let category = IncidentType::ALL
                        .iter()
                        .copied()
                        .find(|t| incidents.iter().any(|i| i.incident_type == *t));
                    outcomes.push(ScanOutcome {
                        flagged: !incidents.is_empty(),
                        category,
                        incidents,
                        task,
                    });
                }
                outcomes
            },
            |state, job, outcomes| {
                if !outcomes.is_empty() {
                    state.pending.insert(job, outcomes);
                }
            },
            |state, next| {
                shard += 1;
                self.fold_boundary(state);
                let last_day = if next > 0 {
                    self.stream.impression(next as u64 - 1).day
                } else {
                    0
                };
                self.answer_queries(state, shard, next as u64, last_day);
                let stop = abort.is_some_and(|limit| shard >= limit);
                if let Some(store) = &store {
                    if stop || next >= total || shard.is_multiple_of(every) {
                        let snapshot = snapshot_of(
                            state,
                            next,
                            ScriptBase::capture(script_base.plus(script_stats.snapshot())),
                        );
                        let write_started = Instant::now();
                        let bytes = snapshot.save(store).expect("serve checkpoint write failed");
                        registry.checkpoint_written(bytes, write_started.elapsed());
                    }
                }
                if sampler.is_enabled() {
                    let counters = BTreeMap::from([
                        ("serve_ingested".to_string(), state.counters.ingested),
                        ("serve_scans".to_string(), state.counters.scans),
                        ("serve_cache_hits".to_string(), state.counters.cache_hits),
                        (
                            "serve_stale_serves".to_string(),
                            state.counters.stale_serves,
                        ),
                        ("serve_rescans".to_string(), state.counters.rescans),
                        ("serve_shed".to_string(), state.counters.shed),
                        (
                            "serve_rescan_backlog".to_string(),
                            state.counters.rescan_backlog,
                        ),
                        ("serve_evictions".to_string(), state.counters.evictions),
                        ("unique_creatives".to_string(), state.cache.len() as u64),
                    ]);
                    sampler.sample(
                        shard,
                        next as u64,
                        counters,
                        balance_of(estats.as_ref()),
                        vm_meter_of(script_base.plus(script_stats.snapshot())),
                    );
                }
                if !stop && next < total {
                    let window = next as u64..((next + shard_size).min(total)) as u64;
                    *plan.write() = self.plan_window(state, window);
                }
                if stop {
                    Boundary::Stop
                } else {
                    Boundary::Continue
                }
            },
        );

        if outcome.next_job < total {
            // Parked: the snapshot at the stop boundary is already on disk
            // (when checkpointing); pending queries wait for the resume.
            return None;
        }
        let mut state = outcome.state;
        // Zero-impression runs never cross a boundary; answer whatever is
        // queued so queries cannot dangle.
        let last_day = if total > 0 {
            self.stream.impression(total as u64 - 1).day
        } else {
            0
        };
        self.answer_queries(&mut state, shard.max(1), total as u64, last_day);

        let script = script_base.plus(script_stats.snapshot());
        let snapshot = snapshot_of(&state, total, ScriptBase::capture(script));
        let counters = RunCounters {
            serve_ingested: state.counters.ingested,
            serve_scans: state.counters.scans,
            serve_cache_hits: state.counters.cache_hits,
            serve_rescans: state.counters.rescans,
            serve_shed: state.counters.shed,
            serve_rescan_backlog: state.counters.rescan_backlog,
            oracle_executions: state.counters.scans,
            feed_lookups: oracle_stats.feed_lookups(),
            script_budgets_exhausted: oracle_stats.budget_exhaustions(),
            script_lookups: script.lookups,
            script_cache_hits: script.cache_hits,
            script_cache_misses: script.cache_misses,
            bytecode_dispatches: script.bytecode_dispatches,
            inline_cache_hits: script.inline_cache_hits,
            inline_cache_misses: script.inline_cache_misses,
            shape_hits: script.shape_hits,
            shape_transitions: script.shape_transitions,
            ..RunCounters::default()
        };
        Some(ServeReport {
            snapshot,
            counters,
            shards: shard,
            wall: started.elapsed(),
            scan_log: state.scan_log,
        })
    }
}

/// Converts the engine's scheduling snapshot into the trace crate's plain
/// balance record (same indirection the batch study uses).
fn balance_of(stats: Option<&EngineStats>) -> EngineBalance {
    stats
        .map(|stats| {
            let snap = stats.snapshot();
            EngineBalance {
                steals: snap.steals,
                parks: snap.parks,
                worker_jobs: snap.worker_jobs,
            }
        })
        .unwrap_or_default()
}

/// Distills script counters into the trace crate's VM meter (same
/// indirection the batch study uses).
fn vm_meter_of(counts: malvert_crawler::ScriptCounts) -> VmMeter {
    VmMeter {
        dispatches: counts.bytecode_dispatches,
        ic_hits: counts.inline_cache_hits,
        ic_misses: counts.inline_cache_misses,
        shape_hits: counts.shape_hits,
        shape_transitions: counts.shape_transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon(seed: u64) -> ServeDaemon {
        ServeDaemon::builder()
            .config(ServeConfig::tiny(seed))
            .shard_size(64)
            .build()
            .expect("daemon builds")
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = ServeConfig::tiny(3);
        let mut b = ServeConfig::tiny(3);
        assert_eq!(serve_fingerprint(&a), serve_fingerprint(&b));
        b.ttl_days += 1;
        assert_ne!(serve_fingerprint(&a), serve_fingerprint(&b));
    }

    #[test]
    fn replay_reaches_the_horizon_and_bounds_the_cache() {
        let d = daemon(21);
        let report = d.run().expect("uninterrupted run completes");
        let c = &report.snapshot.counters;
        assert_eq!(c.ingested, d.config.impressions);
        assert!(c.scans > 0, "a fresh daemon must scan");
        assert!(c.cache_hits > 0, "a replayed stream must repeat creatives");
        assert!(
            report.snapshot.cache.len() <= d.config.cache_capacity,
            "cache exceeded its bound"
        );
        assert_eq!(
            report.counters.serve_ingested, c.ingested,
            "RunCounters mirror the serve ledger"
        );
    }

    #[test]
    fn snapshot_round_trips() {
        let d = daemon(22);
        let report = d.run().expect("completes");
        let json = serde_json::to_string(&report.snapshot).expect("serializes");
        let back: ServeSnapshot = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, report.snapshot);
        back.validate(22, serve_fingerprint(&d.config))
            .expect("validates against its own identity");
        assert!(back.validate(23, serve_fingerprint(&d.config)).is_err());
    }

    #[test]
    fn queries_answer_with_provenance_at_boundaries() {
        let d = daemon(23);
        let handle = d.handle();
        let imp = d.stream.impression(0);
        let url = d.impression_url(imp).to_string();
        let early = handle.ask_at(1, &url).expect("query accepted");
        let unknown = handle
            .ask_at(1, "http://never-served.example/x")
            .expect("accepted");
        let report = d.run().expect("completes");
        let a = early.recv().expect("answered");
        assert_eq!(a.answered_at_shard, 1);
        assert!(a.known, "first impression's creative is scanned in shard 1");
        if a.flagged {
            assert!(!a.provenance.is_empty(), "flagged answers carry provenance");
        }
        let u = unknown.recv().expect("answered");
        assert!(!u.known && !u.flagged && u.provenance.is_empty());
        assert!(report.snapshot.counters.queries >= 2);
    }

    #[test]
    fn tiny_queue_sheds_deterministically() {
        let mut config = ServeConfig::tiny(24);
        config.queue_capacity = 2;
        config.impressions = 256;
        let run = |workers: usize| {
            let mut c = config.clone();
            c.workers = workers;
            ServeDaemon::builder()
                .config(c)
                .shard_size(32)
                .build()
                .expect("builds")
                .run()
                .expect("completes")
        };
        let a = run(1);
        let b = run(4);
        assert!(a.snapshot.counters.shed > 0, "capacity 2 must shed");
        assert_eq!(a.snapshot.state_json(), b.snapshot.state_json());
        assert_eq!(a.counters.serve_shed, a.snapshot.counters.shed);
    }
}
