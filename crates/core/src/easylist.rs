//! EasyList generation for the simulated ecosystem.
//!
//! The real EasyList is maintained by volunteers who add domain-anchor rules
//! for hosts that serve advertisements, plus path-pattern rules for common
//! serve endpoints, plus a handful of exceptions. We generate the same kind
//! of list from the ad economy — crucially *without* consulting campaign
//! ground truth: list authors know serve domains, not which creatives are
//! malicious.

use malvert_adnet::AdWorld;
use malvert_filterlist::FilterSet;

/// Builds the filter list text for the simulated Web.
///
/// `coverage` controls what fraction of ad-network serve domains get a rule
/// (EasyList coverage of real ad hosts is excellent but not perfect);
/// 1.0 lists every network.
pub fn generate_easylist(world: &AdWorld, coverage: f64) -> String {
    let mut lines = vec![
        "[Adblock Plus 2.0]".to_string(),
        "! Title: SimEasyList".to_string(),
        "! Generated for the simulated advertising ecosystem".to_string(),
    ];
    let domains = world.network_domains();
    let listed = ((domains.len() as f64) * coverage.clamp(0.0, 1.0)).round() as usize;
    for domain in domains.iter().take(listed.max(1)) {
        lines.push(format!("||{domain}^"));
    }
    // Generic serve-endpoint patterns, as EasyList carries for common ad
    // server software.
    lines.push("/serve?pub=$subdocument".to_string());
    // An element-hiding rule (parsed, unused by network matching) for
    // realism.
    lines.push("##.ad-banner".to_string());
    lines.join("\n")
}

/// Parses the generated list into a matcher.
pub fn build_filter(world: &AdWorld, coverage: f64) -> FilterSet {
    FilterSet::parse(&generate_easylist(world, coverage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_adnet::AdWorldConfig;
    use malvert_filterlist::RequestContext;
    use malvert_types::rng::SeedTree;
    use malvert_types::{AdNetworkId, DomainName, Url};

    fn world() -> AdWorld {
        AdWorld::generate(SeedTree::new(3), &AdWorldConfig::default())
    }

    #[test]
    fn full_coverage_matches_every_network() {
        let w = world();
        let filter = build_filter(&w, 1.0);
        let ctx = RequestContext::iframe_from(&DomainName::parse("pub.com").unwrap());
        for (i, _) in w.networks().iter().enumerate() {
            let url = w.serve_url(AdNetworkId(i as u32), 1, 0);
            assert!(filter.is_ad_url(&url, &ctx), "network {i} not matched");
        }
    }

    #[test]
    fn partial_coverage_misses_tail() {
        let w = world();
        let filter = build_filter(&w, 0.5);
        let ctx = RequestContext::iframe_from(&DomainName::parse("pub.com").unwrap());
        // The generic /serve?pub= rule still catches subdocument requests,
        // so even unlisted networks match via the path pattern.
        let url = w.serve_url(AdNetworkId(39), 1, 0);
        assert!(filter.is_ad_url(&url, &ctx));
        // But a bare URL on an unlisted network domain does not match.
        let last = &w.network_domains()[39];
        let bare = Url::parse(&format!("http://{last}/about")).unwrap();
        assert!(!filter.is_ad_url(&bare, &ctx));
    }

    #[test]
    fn ordinary_sites_not_matched() {
        let w = world();
        let filter = build_filter(&w, 1.0);
        let ctx = RequestContext::iframe_from(&DomainName::parse("pub.com").unwrap());
        for u in [
            "http://newsportal7.com/",
            "http://widgets.embedhub.net/weather",
            "http://landing-shop1.com/offer?c=1",
        ] {
            assert!(!filter.is_ad_url(&Url::parse(u).unwrap(), &ctx), "{u}");
        }
    }

    #[test]
    fn list_is_plausible_text() {
        let w = world();
        let text = generate_easylist(&w, 1.0);
        assert!(text.starts_with("[Adblock Plus 2.0]"));
        assert!(text.lines().count() > 40);
        let filter = FilterSet::parse(&text);
        assert_eq!(filter.unsupported_count, 0);
        assert_eq!(filter.hiding_rule_count, 1);
    }
}
