//! §5.2's "last line of defense", implemented: a browser-side path-based
//! protection in the spirit of Li et al. (CCS 2012), which the paper cites as
//! the reactive countermeasure — "utilize the knowledge of malicious ad paths
//! and their topological features to raise an alarm when a user's browser
//! starts visiting a suspicious ad path, protecting the user from reaching an
//! exploit server".
//!
//! The defender trains on the oracle's verdicts over an early window of the
//! study (that is all a deployment would have), learns per-node reputations
//! over ad-delivery paths, and is then evaluated on the later window against
//! ground truth: would watching the redirect path alone have protected the
//! user, before any exploit content arrived?

use crate::study::{ClassifiedAd, StudyResults};
use malvert_types::Url;
use serde::Serialize;
use std::collections::HashMap;

/// Per-node path statistics learned during training.
#[derive(Debug, Clone, Copy, Default)]
struct NodeStats {
    malicious_paths: u32,
    total_paths: u32,
}

/// The trained path classifier.
#[derive(Debug, Default)]
pub struct PathDefense {
    nodes: HashMap<String, NodeStats>,
    /// Chain length at which the path itself becomes suspicious (long
    /// arbitration chains correlate with malvertising — Figure 5).
    pub long_chain_threshold: usize,
}

/// Evaluation summary of the defense on a held-out window.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DefenseQuality {
    /// Malicious ads (ground truth) whose paths were blocked.
    pub blocked_malicious: usize,
    /// Malicious ads whose paths were let through.
    pub missed_malicious: usize,
    /// Benign ads wrongly blocked.
    pub blocked_benign: usize,
    /// Benign ads correctly let through.
    pub passed_benign: usize,
}

impl DefenseQuality {
    /// True-positive (protection) rate.
    pub fn protection_rate(&self) -> f64 {
        let total = self.blocked_malicious + self.missed_malicious;
        if total == 0 {
            1.0
        } else {
            self.blocked_malicious as f64 / total as f64
        }
    }

    /// False-block rate over benign ads.
    pub fn false_block_rate(&self) -> f64 {
        let total = self.blocked_benign + self.passed_benign;
        if total == 0 {
            0.0
        } else {
            self.blocked_benign as f64 / total as f64
        }
    }
}

impl PathDefense {
    /// Trains on a set of classified ads (typically the early-window slice).
    /// Labels come from the *oracle's* verdicts — a deployment has no ground
    /// truth.
    pub fn train<'a>(ads: impl Iterator<Item = &'a ClassifiedAd>) -> Self {
        let mut defense = PathDefense {
            nodes: HashMap::new(),
            long_chain_threshold: 16,
        };
        for ad in ads {
            let malicious = ad.category.is_some();
            for node in path_nodes_from_counts(ad) {
                let stats = defense.nodes.entry(node).or_default();
                stats.total_paths += 1;
                if malicious {
                    stats.malicious_paths += 1;
                }
            }
        }
        defense
    }

    /// Scores a path (0 = surely clean, 1 = surely malicious).
    ///
    /// Node reputations combine noisy-OR style: several weak signals (a
    /// couple of disreputable arbitration hops) add up the way one strong
    /// signal (a known exploit host) does. Over-long chains raise the score
    /// on their own — Figure 5's topological tell.
    pub fn score_path(&self, chain_hosts: &[String], chain_len: usize) -> f64 {
        let mut clean_prob: f64 = 1.0;
        for host in chain_hosts {
            if let Some(stats) = self.nodes.get(host) {
                // Laplace-smoothed malicious fraction, shrunk toward zero
                // for rarely-seen nodes.
                let p = f64::from(stats.malicious_paths)
                    / (f64::from(stats.total_paths) + 2.0);
                clean_prob *= 1.0 - p;
            }
        }
        let mut score = 1.0 - clean_prob;
        if chain_len > self.long_chain_threshold {
            score = score.max(0.8);
        }
        score
    }

    /// Scores one classified ad by its recorded chain.
    pub fn score_ad(&self, ad: &ClassifiedAd) -> f64 {
        self.score_path(&path_nodes_from_counts(ad), ad.max_chain_len)
    }

    /// Evaluates the defense on held-out ads against ground truth.
    pub fn evaluate<'a>(
        &self,
        ads: impl Iterator<Item = &'a ClassifiedAd>,
        threshold: f64,
    ) -> DefenseQuality {
        let mut q = DefenseQuality {
            blocked_malicious: 0,
            missed_malicious: 0,
            blocked_benign: 0,
            passed_benign: 0,
        };
        for ad in ads {
            let blocked = self.score_ad(ad) >= threshold;
            match (ad.truly_malicious, blocked) {
                (true, true) => q.blocked_malicious += 1,
                (true, false) => q.missed_malicious += 1,
                (false, true) => q.blocked_benign += 1,
                (false, false) => q.passed_benign += 1,
            }
        }
        q
    }

    /// Number of path nodes with learned reputations.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// The path nodes of an ad: every host its delivery path contacted — serve
/// endpoints, arbitration hops, creative hosts, exploit gates. This is the
/// topological skeleton Li et al. keyed on; incident details are *not*
/// consulted.
fn path_nodes_from_counts(ad: &ClassifiedAd) -> Vec<String> {
    let mut nodes = Vec::new();
    if let Ok(u) = Url::parse(&ad.request_url) {
        if let Some(h) = u.host() {
            nodes.push(h.to_string());
        }
    }
    nodes.extend(ad.contacted_hosts.iter().cloned());
    nodes.sort();
    nodes.dedup();
    nodes
}

/// Splits study results into train/test by first-seen day and evaluates the
/// defense at `threshold`.
pub fn train_and_evaluate(
    results: &StudyResults,
    split_day: u32,
    threshold: f64,
) -> (PathDefense, DefenseQuality) {
    let defense = PathDefense::train(
        results.ads.iter().filter(|a| a.first_seen.day < split_day),
    );
    let quality = defense.evaluate(
        results.ads.iter().filter(|a| a.first_seen.day >= split_day),
        threshold,
    );
    (defense, quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    fn shared() -> &'static StudyResults {
        static CELL: OnceLock<StudyResults> = OnceLock::new();
        CELL.get_or_init(|| Study::new(StudyConfig::tiny(61)).run())
    }

    #[test]
    fn defense_learns_and_protects() {
        let results = shared();
        let (defense, quality) = train_and_evaluate(results, 2, 0.5);
        assert!(defense.node_count() > 10);
        let evaluated = quality.blocked_malicious
            + quality.missed_malicious
            + quality.blocked_benign
            + quality.passed_benign;
        assert!(evaluated > 0, "no held-out ads to evaluate");
        // Path watching must be cheap on benign traffic.
        assert!(
            quality.false_block_rate() < 0.15,
            "false block rate {:.3}",
            quality.false_block_rate()
        );
    }

    #[test]
    fn defense_protects_against_recurring_campaigns() {
        // The sharp claim of a path defense: once a campaign's delivery path
        // has been seen, later ads of the *same campaign* are blocked before
        // any exploit content loads. Fresh infrastructure (campaigns whose
        // paths were never observed) is the documented evasion gap.
        let results = shared();
        let split_day = 2;
        let defense = PathDefense::train(
            results.ads.iter().filter(|a| a.first_seen.day < split_day),
        );
        let trained_campaigns: std::collections::BTreeSet<_> = results
            .ads
            .iter()
            .filter(|a| a.first_seen.day < split_day && a.category.is_some())
            .filter_map(|a| a.truth_campaign)
            .collect();
        let mut blocked = 0;
        let mut missed = 0;
        for ad in results
            .ads
            .iter()
            .filter(|a| a.first_seen.day >= split_day && a.truly_malicious)
        {
            let recurring = ad
                .truth_campaign
                .map(|c| trained_campaigns.contains(&c))
                .unwrap_or(false);
            if !recurring {
                continue;
            }
            if defense.score_ad(ad) >= 0.5 {
                blocked += 1;
            } else {
                missed += 1;
            }
        }
        if blocked + missed >= 2 {
            assert!(
                blocked * 2 >= blocked + missed,
                "recurring-campaign protection too weak: {blocked} blocked, {missed} missed"
            );
        }
    }

    #[test]
    fn threshold_monotonicity() {
        let results = shared();
        let (defense, _) = train_and_evaluate(results, 2, 0.5);
        let strict = defense.evaluate(results.ads.iter(), 0.9);
        let loose = defense.evaluate(results.ads.iter(), 0.2);
        assert!(loose.blocked_malicious >= strict.blocked_malicious);
        assert!(loose.blocked_benign >= strict.blocked_benign);
    }

    #[test]
    fn empty_training_blocks_nothing_normal() {
        let results = shared();
        let defense = PathDefense::train(std::iter::empty());
        let q = defense.evaluate(results.ads.iter(), 0.5);
        // Without learned nodes, only over-long chains can trip the score.
        assert!(q.blocked_benign <= results.ads.len() / 50);
    }
}
