//! # malvert-core
//!
//! The measurement study itself: the end-to-end pipeline of the paper plus
//! every analysis in §4, reproduced over the simulated Web.
//!
//! Pipeline stages (see [`study`]):
//!
//! 1. **World generation** — a ranked Web (`malvert-websim`), an ad economy
//!    (`malvert-adnet`), and the oracle component services (49 blacklist
//!    feeds, 51 scan engines), all derived from one study seed.
//! 2. **Filter-list generation** — an EasyList-style list for the simulated
//!    ecosystem ([`easylist`]), built the way the real EasyList is: from the
//!    serve-domain patterns of known ad hosts.
//! 3. **Crawl** — every site, daily, with five refreshes (scaled by
//!    configuration), extracting ad iframes and de-duplicating the corpus.
//! 4. **Classification** — each unique advertisement goes through the
//!    oracle; incidents are assigned to the six Table 1 categories with
//!    first-match precedence (the table's rows sum to the total).
//!    Classification runs on the shared work-stealing engine; per-ad seed
//!    derivation keeps the output byte-identical at any worker count.
//!
//! Both crawl and classify are checkpointable at engine shard boundaries
//! ([`checkpoint`]): a killed run resumed via [`study::StudyBuilder`] is
//! byte-identical to an uninterrupted one.
//! 5. **Analysis** ([`analysis`]) — Table 1, Figures 1–5, the cluster
//!    split, and the §4.4 sandbox census, as typed reports with text
//!    renderers ([`report`]).
//!
//! The §5 countermeasures are implemented in [`countermeasures`] as
//! re-runnable ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod countermeasures;
pub mod defense;
pub mod easylist;
pub mod metrics;
pub mod report;
pub mod serve;
pub mod study;
pub mod svg;
pub mod world;

pub use analysis::{
    ClusterSplit, Fig1Row, Fig2Row, Fig3Row, Fig4Row, Fig5Histogram, SandboxReport, Table1,
};
pub use checkpoint::{Phase, StudySnapshot};
pub use metrics::{RunCounters, RunMetrics, RunSummary, StageId};
pub use serve::{
    CachedVerdict, QueryAnswer, QueryHandle, ServeBuilder, ServeConfig, ServeCounters, ServeDaemon,
    ServeOptions, ServeReport, ServeSnapshot,
};
pub use study::{
    ClassifiedAd, CrawlSummary, RunOptions, Study, StudyBuilder, StudyConfig, StudyResults,
};
pub use world::StudyWorld;
