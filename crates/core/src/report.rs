//! Text renderers for the analysis reports — one printable block per table
//! and figure, matching what the paper reports.

use crate::analysis::{
    ClusterSplit, Fig1Row, Fig2Row, Fig3Row, Fig4Row, Fig5Histogram, SandboxReport, Table1,
};
use crate::metrics::RunSummary;

/// Renders Table 1 as aligned text.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Classification of malvertisements\n");
    out.push_str(&format!(
        "{:<26}{:>10}\n",
        "Type of maliciousness", "#Incidents"
    ));
    for (label, count) in &t.rows {
        out.push_str(&format!("{label:<26}{count:>10}\n"));
    }
    out.push_str(&format!("{:<26}{:>10}\n", "Total", t.total));
    out.push_str(&format!(
        "Corpus: {} unique ads; {:.2}% flagged malicious\n",
        t.corpus_size,
        t.malicious_fraction * 100.0
    ));
    out
}

/// Renders Figure 1 (per-network malvertising ratios) as text.
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 1: Malvertising distribution from selected ad networks\n");
    out.push_str(&format!(
        "{:<18}{:>10}{:>10}{:>9}\n",
        "network", "malicious", "total", "ratio"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18}{:>10}{:>10}{:>8.1}%  {}\n",
            r.name,
            r.malicious,
            r.total,
            r.ratio * 100.0,
            bar(r.ratio, 30)
        ));
    }
    out
}

/// Renders Figure 2 (network volume shares) as text.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 2: Distribution of advertisements from selected ad networks\n");
    out.push_str(&format!(
        "{:<18}{:>12}{:>9}{:>11}\n",
        "network", "ads served", "share", "malicious"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18}{:>12}{:>8.2}%{:>11}{}\n",
            r.name,
            r.observations,
            r.share * 100.0,
            r.malicious,
            if r.is_hotspot { "  <-- hotspot" } else { "" }
        ));
    }
    out
}

/// Renders the cluster split (§4.2) as text.
pub fn render_cluster_split(split: &ClusterSplit) -> String {
    let mut out = String::new();
    out.push_str("Cluster split (s4.2): share of malvertisements / share of all ads\n");
    out.push_str(&format!(
        "{:<12}{:>12}{:>10}\n",
        "cluster", "malverts", "ads"
    ));
    for (label, mal, ads) in &split.rows {
        out.push_str(&format!(
            "{label:<12}{:>11.1}%{:>9.1}%\n",
            mal * 100.0,
            ads * 100.0
        ));
    }
    out
}

/// Renders Figure 3 (site categories) as text.
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 3: Websites categorization that served malvertisements\n");
    for r in rows {
        out.push_str(&format!(
            "{:<20}{:>6} sites {:>7.1}%  {}\n",
            r.category,
            r.sites,
            r.share * 100.0,
            bar(r.share, 30)
        ));
    }
    out
}

/// Renders Figure 4 (TLD distribution) as text.
pub fn render_fig4(rows: &[Fig4Row], generic_share: f64) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: Malvertisement distribution based on top level domains\n");
    for r in rows {
        out.push_str(&format!(
            "{:<8}{:>6} sites {:>7.1}%  {}{}\n",
            r.tld,
            r.sites,
            r.share * 100.0,
            bar(r.share, 30),
            if r.generic { "  (generic)" } else { "" }
        ));
    }
    out.push_str(&format!(
        "Generic TLDs carry {:.1}% of malvertising hosts\n",
        generic_share * 100.0
    ));
    out
}

/// Renders Figure 5 (arbitration chains) as text.
pub fn render_fig5(hist: &Fig5Histogram) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: Ad networks involved in ad arbitration\n");
    let max_len = hist.benign_max().max(hist.malicious_max());
    let benign_total: u64 = hist.benign.values().sum();
    let mal_total: u64 = hist.malicious.values().sum();
    out.push_str(&format!(
        "{:<10}{:>14}{:>14}\n",
        "auctions", "benign", "malicious"
    ));
    for auctions in 0..=max_len {
        let b = hist.benign.get(&auctions).copied().unwrap_or(0);
        let m = hist.malicious.get(&auctions).copied().unwrap_or(0);
        if b == 0 && m == 0 {
            continue;
        }
        let b_pct = if benign_total == 0 {
            0.0
        } else {
            b as f64 / benign_total as f64 * 100.0
        };
        let m_pct = if mal_total == 0 {
            0.0
        } else {
            m as f64 / mal_total as f64 * 100.0
        };
        out.push_str(&format!(
            "{auctions:<10}{b:>8} {b_pct:>4.1}%{m:>8} {m_pct:>4.1}%\n"
        ));
    }
    out.push_str(&format!(
        "max benign chain: {} auctions; max malicious chain: {} auctions\n",
        hist.benign_max(),
        hist.malicious_max()
    ));
    out.push_str(&format!(
        "malicious chains beyond 15 auctions: {:.1}%\n",
        hist.malicious_tail_fraction(15) * 100.0
    ));
    out
}

/// Renders the §4.3 tier-composition-by-depth analysis as text.
pub fn render_late_auction_tiers(t: &crate::analysis::LateAuctionTiers) -> String {
    let mut out = String::new();
    out.push_str("Auction-depth tier composition (s4.3)\n");
    out.push_str(&format!(
        "{:<16}{:>8}{:>8}{:>8}{:>10}\n",
        "depth", "major", "mid", "shady", "hops"
    ));
    for (label, major, mid, shady, hops) in &t.buckets {
        out.push_str(&format!(
            "{label:<16}{:>7.1}%{:>7.1}%{:>7.1}%{hops:>10}\n",
            major * 100.0,
            mid * 100.0,
            shady * 100.0
        ));
    }
    out
}

/// Renders the sandbox census (§4.4) as text.
pub fn render_sandbox(report: &SandboxReport) -> String {
    format!(
        "Sandbox census (s4.4): {} of {} iframes sandboxed ({:.2}%)\n",
        report.sandboxed,
        report.total_iframes,
        report.adoption() * 100.0
    )
}

/// Renders the per-day timeline as text.
pub fn render_timeline(rows: &[crate::analysis::TimelineRow]) -> String {
    let mut out = String::new();
    out.push_str("Study timeline: new unique ads per first-seen day, by detection route\n");
    out.push_str(&format!(
        "{:<6}{:>9}{:>12}{:>12}{:>12}\n",
        "day", "new ads", "blacklists", "redirects", "behaviour"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6}{:>9}{:>12}{:>12}{:>12}\n",
            r.day, r.new_ads, r.via_blacklists, r.via_redirections, r.via_behaviour
        ));
    }
    out
}

/// Renders the per-campaign forensics table as text.
pub fn render_campaign_forensics(rows: &[crate::analysis::CampaignForensics]) -> String {
    let mut out = String::new();
    out.push_str("Campaign attribution (ground-truth audit)\n");
    out.push_str(&format!(
        "{:<15}{:<11}{:>6}{:>11}{:>10}{:>8}{:>13}  categories\n",
        "campaign", "kind", "from", "delivered", "detected", "sites", "impressions"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<15}{:<11}{:>6}{:>11}{:>10}{:>8}{:>13}  {}\n",
            r.campaign.to_string(),
            r.kind,
            r.active_from,
            r.creatives_delivered,
            r.creatives_detected,
            r.sites_reached,
            r.impressions,
            r.categories.join(", ")
        ));
    }
    out
}

/// Renders the run metrics (stage timings + pipeline counters) as text.
pub fn render_run_metrics(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("Run metrics: per-stage wall clock and pipeline counters\n");
    let total_us: u64 = summary.timings.iter().map(|t| t.wall_us).sum();
    for t in &summary.timings {
        out.push_str(&format!(
            "{:<14}{:>12.1} ms\n",
            t.stage.label(),
            t.wall_us as f64 / 1000.0
        ));
    }
    out.push_str(&format!(
        "{:<14}{:>12.1} ms\n",
        "total",
        total_us as f64 / 1000.0
    ));
    let c = &summary.counters;
    out.push_str(&format!(
        "page loads {} | observations {} | unique ads {} | oracle runs {} | \
         feed lookups {} | script budgets exhausted {}\n",
        c.page_loads,
        c.ads_observed,
        c.unique_ads,
        c.oracle_executions,
        c.feed_lookups,
        c.script_budgets_exhausted
    ));
    out.push_str(&format!(
        "filter lookups {} | memo hits {} | memo misses {} | \
         candidate rules evaluated {}\n",
        c.filter_lookups, c.filter_cache_hits, c.filter_cache_misses, c.filter_candidates_evaluated
    ));
    out.push_str(&format!(
        "script lookups {} | compile cache hits {} | compile cache misses {}\n",
        c.script_lookups, c.script_cache_hits, c.script_cache_misses
    ));
    if c.bytecode_dispatches > 0 {
        out.push_str(&format!(
            "vm dispatches {} | inline cache hits {} | inline cache misses {} | \
             shape hits {} | shape transitions {}\n",
            c.bytecode_dispatches,
            c.inline_cache_hits,
            c.inline_cache_misses,
            c.shape_hits,
            c.shape_transitions
        ));
    }
    let e = &c.errors;
    if !e.is_clean() || e.degraded_visits > 0 {
        out.push_str(&format!(
            "crawl errors: dns {} | 5xx {} | timeouts {} | resets {} | truncated {} | \
             malformed {} | redirect {} | retries {} | degraded visits {} | failed visits {}\n",
            e.dns_failures,
            e.http_5xx,
            e.timeouts,
            e.connection_resets,
            e.truncated_bodies,
            e.malformed_html,
            e.redirect_failures,
            e.retries,
            e.degraded_visits,
            e.failed_visits
        ));
    }
    let merged: Vec<_> = summary
        .latencies
        .iter()
        .filter(|l| l.worker.is_none())
        .collect();
    if !merged.is_empty() {
        out.push_str("span latencies (merged across workers):\n");
        for l in merged {
            out.push_str(&format!(
                "{:<18}{:>8} spans  p50 {:>8} us  p95 {:>8} us  max {:>10} us\n",
                l.kind.label(),
                l.hist.count(),
                l.p50_us,
                l.p95_us,
                l.max_us
            ));
        }
    }
    out
}

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_types::AdNetworkId;
    use std::collections::BTreeMap;

    #[test]
    fn table1_renders() {
        let t = Table1 {
            rows: vec![
                ("Blacklists".into(), 4794),
                ("Suspicious redirections".into(), 1396),
            ],
            total: 6190,
            corpus_size: 673_596,
            malicious_fraction: 0.009,
        };
        let s = render_table1(&t);
        assert!(s.contains("Blacklists"));
        assert!(s.contains("4794"));
        assert!(s.contains("0.90%"));
    }

    #[test]
    fn fig1_renders_with_bars() {
        let rows = vec![Fig1Row {
            network: AdNetworkId(7),
            name: "ClickBoost37".into(),
            malicious: 10,
            total: 25,
            ratio: 0.4,
        }];
        let s = render_fig1(&rows);
        assert!(s.contains("ClickBoost37"));
        assert!(s.contains("40.0%"));
        assert!(s.contains('#'));
    }

    #[test]
    fn fig5_renders_histogram() {
        let mut benign = BTreeMap::new();
        benign.insert(0, 100u64);
        benign.insert(3, 10);
        let mut malicious = BTreeMap::new();
        malicious.insert(5, 7u64);
        malicious.insert(22, 1);
        let hist = Fig5Histogram { benign, malicious };
        let s = render_fig5(&hist);
        assert!(s.contains("max benign chain: 3 auctions"));
        assert!(s.contains("max malicious chain: 22 auctions"));
        assert!(s.contains("beyond 15 auctions: 12.5%"));
    }

    #[test]
    fn sandbox_renders() {
        let s = render_sandbox(&SandboxReport {
            total_iframes: 1000,
            sandboxed: 0,
        });
        assert!(s.contains("0 of 1000"));
        assert!(s.contains("0.00%"));
    }

    #[test]
    fn run_metrics_render() {
        use crate::metrics::{RunCounters, StageId, StageTiming};
        let summary = RunSummary {
            counters: RunCounters {
                page_loads: 12,
                ads_observed: 34,
                unique_ads: 20,
                oracle_executions: 20,
                script_budgets_exhausted: 1,
                feed_lookups: 80,
                filter_lookups: 96,
                filter_cache_hits: 64,
                filter_cache_misses: 32,
                filter_candidates_evaluated: 40,
                script_lookups: 120,
                script_cache_hits: 110,
                script_cache_misses: 10,
                bytecode_dispatches: 8600,
                inline_cache_hits: 300,
                inline_cache_misses: 30,
                shape_hits: 250,
                shape_transitions: 18,
                errors: malvert_types::ErrorCounters::default(),
                ..RunCounters::default()
            },
            timings: vec![
                StageTiming {
                    stage: StageId::Crawl,
                    wall_us: 1500,
                },
                StageTiming {
                    stage: StageId::Classify,
                    wall_us: 2500,
                },
            ],
            ..RunSummary::default()
        };
        let s = render_run_metrics(&summary);
        assert!(s.contains("crawl"));
        assert!(s.contains("1.5 ms"));
        assert!(s.contains("4.0 ms"));
        assert!(s.contains("oracle runs 20"));
        assert!(s.contains("filter lookups 96"));
        assert!(s.contains("memo hits 64"));
        assert!(s.contains("script lookups 120"));
        assert!(s.contains("compile cache hits 110"));
        assert!(s.contains("vm dispatches 8600"));
        assert!(s.contains("inline cache hits 300"));
        assert!(s.contains("shape hits 250"));
        assert!(s.contains("shape transitions 18"));
        // A clean run renders no error line at all.
        assert!(!s.contains("crawl errors"));
        // Untraced runs render no latency block.
        assert!(!s.contains("span latencies"));

        let mut faulted = summary.clone();
        faulted
            .counters
            .errors
            .record(malvert_types::CrawlErrorClass::Timeout);
        faulted.counters.errors.retries = 2;
        faulted.counters.errors.degraded_visits = 1;
        let s = render_run_metrics(&faulted);
        assert!(s.contains("crawl errors"));
        assert!(s.contains("timeouts 1"));
        assert!(s.contains("retries 2"));
        assert!(s.contains("degraded visits 1"));

        let mut hist = malvert_trace::LogHistogram::new();
        hist.record_us(900);
        let mut traced = summary.clone();
        traced.latencies = vec![
            malvert_trace::SpanLatency::from_hist(
                malvert_trace::SpanKind::ClassifyAd,
                None,
                hist.clone(),
            ),
            malvert_trace::SpanLatency::from_hist(
                malvert_trace::SpanKind::ClassifyAd,
                Some(1),
                hist,
            ),
        ];
        let s = render_run_metrics(&traced);
        assert!(s.contains("span latencies"));
        assert!(s.contains("classify_ad"));
    }

    #[test]
    fn bar_widths() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(2.0, 4), "####");
    }
}
