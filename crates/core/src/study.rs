//! The end-to-end study pipeline, as explicit typed stages.
//!
//! The paper's measurement pipeline is four distinct stages — crawl,
//! de-duplicate, classify, aggregate (§3) — and each is a first-class,
//! independently observable unit here: [`Study::crawl`] produces a
//! [`CrawlSummary`], [`Study::classify`] consumes it and produces
//! [`StudyResults`] carrying [`RunMetrics`]. [`Study::run`] is the
//! composition of the two. Callers that only need to re-run later stages
//! (countermeasure ablations, the CLI, examples) compose the stages
//! directly instead of re-crawling.
//!
//! Both stages execute on the shared work-stealing engine
//! (`malvert-engine`): visits stream into a [`CrawlAggregate`] as they
//! complete (memory stays bounded by the corpus, not the visit count),
//! and shard boundaries are checkpointable — see [`StudyBuilder`], the
//! single front door that assembles a [`Study`] with its [`RunOptions`]
//! (trace sink, checkpoint directory, engine geometry) and resumes a
//! parked run from its snapshot.

use crate::checkpoint::{
    config_fingerprint, CrawlState, FilterBase, Phase, ScriptBase, StudySnapshot, SNAPSHOT_VERSION,
};
use crate::metrics::{
    GroundTruth, HijackTally, IframeCensus, RunCounters, RunMetrics, RunSummary, StageId,
};
use crate::world::StudyWorld;
use malvert_adnet::AdWorldConfig;
use malvert_crawler::{
    creative_key, AdCorpus, CrawlAggregate, CrawlConfig, Crawler, FilterCounts, FilterStats,
    ScriptCache, ScriptCounts, ScriptEngine, ScriptStats, UniqueAd,
};
use malvert_engine::{run_fold_observed, Boundary, EngineConfig, EngineStats, SnapshotStore};
use malvert_net::FaultProfile;
use malvert_oracle::{behavior_fingerprint, Incident, IncidentType, Oracle, OracleStats};
use malvert_trace::{EngineBalance, MetricsRegistry, SpanKind, TraceReport, TraceSink, VmMeter};
use malvert_types::{AdNetworkId, CampaignId, CrawlSchedule, ErrorCounters, SimTime, SiteId, Url};
use malvert_websim::WebConfig;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Panic message of the plain entry points when a run parks at a
/// checkpoint boundary instead of completing.
const PARKED: &str = "study parked at a checkpoint boundary; resume it with \
     StudyBuilder::resume, or drive abortable runs through Study::try_run";

/// Study configuration: world sizes, crawl schedule, oracle knobs.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Root seed — everything derives from it.
    pub seed: u64,
    /// Web population.
    pub web: WebConfig,
    /// Ad economy population.
    pub ads: AdWorldConfig,
    /// Crawl schedule and parallelism. `crawl.workers` also sets the
    /// classification worker count.
    pub crawl: CrawlConfig,
    /// EasyList coverage of ad-network serve domains.
    pub easylist_coverage: f64,
    /// Number of previously-confirmed behaviours to seed the model DB with
    /// (the "previously-known malicious behaviors" of §4.1).
    pub model_seed_count: usize,
    /// Day blacklist knowledge is evaluated at. Classification is
    /// retrospective (the paper monitored the feeds across the whole
    /// study); defaults to the last crawl day.
    pub blacklist_eval_day: Option<u32>,
    /// Seed-driven fault injection attached to the simulated network
    /// (`None` = a fault-free substrate, byte-identical to a run without
    /// the knob). Faults are pure functions of `(seed, time, url)`, so a
    /// faulted run is still byte-identical at any worker count.
    pub faults: Option<FaultProfile>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2014,
            web: WebConfig::default(),
            ads: AdWorldConfig::default(),
            crawl: CrawlConfig::default(),
            easylist_coverage: 1.0,
            model_seed_count: 8,
            blacklist_eval_day: None,
            faults: None,
        }
    }
}

impl StudyConfig {
    /// A miniature configuration for tests: small world, short crawl.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            seed,
            web: WebConfig {
                ranking_universe: 10_000,
                top_slice: 40,
                bottom_slice: 40,
                random_slice: 60,
                security_feed: 20,
                ad_network_count: 40,
                sandbox_adoption: 0.0,
            },
            crawl: CrawlConfig {
                schedule: malvert_types::CrawlSchedule::scaled(4, 2),
                workers: 4,
                ..CrawlConfig::default()
            },
            ..StudyConfig::default()
        }
    }
}

/// One unique advertisement after classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifiedAd {
    /// Representative slot-request URL.
    pub request_url: String,
    /// Stable creative key — also the unit key of this ad's events in the
    /// trace stream, joining a classified ad to its spans and incidents.
    pub creative_key: u64,
    /// First observation time.
    pub first_seen: SimTime,
    /// Observation count.
    pub observations: u64,
    /// Sites the ad appeared on.
    pub sites: Vec<SiteId>,
    /// The network that filled the impression (final URL host), when it was
    /// an ad-network host.
    pub serving_network: Option<AdNetworkId>,
    /// Networks along the longest observed arbitration chain, in hop order
    /// (the filling network is last).
    pub chain_networks: Vec<AdNetworkId>,
    /// Longest observed chain length in requests (1 = direct fill).
    pub max_chain_len: usize,
    /// Every detection signal the oracle raised.
    pub incidents: Vec<Incident>,
    /// The single Table 1 category for this ad (first-match precedence), if
    /// any signal fired.
    pub category: Option<IncidentType>,
    /// Ground truth: the campaign behind the creative, when the creative
    /// maps to one (house ads do not).
    pub truth_campaign: Option<CampaignId>,
    /// Ground truth: is the creative actually malicious?
    pub truly_malicious: bool,
    /// Per-chain-length observation counts for this ad (Figure 5 input).
    pub chain_length_counts: BTreeMap<usize, u64>,
    /// Every host the ad's classification visit contacted, in first-contact
    /// order — the full ad path (used by the path-based defense of §5.2).
    pub contacted_hosts: Vec<String>,
}

/// Output of the crawl stage ([`Study::crawl`]): the de-duplicated corpus
/// plus everything the aggregation stage needs from the crawl, as named
/// fields.
#[derive(Debug)]
pub struct CrawlSummary {
    /// The de-duplicated advertisement corpus.
    pub corpus: AdCorpus,
    /// Per-creative chain-length observation tallies, keyed by
    /// [`creative_key`].
    pub chain_lengths: HashMap<u64, BTreeMap<usize, u64>>,
    /// Per-site total ad observations.
    pub site_ad_observations: HashMap<SiteId, u64>,
    /// Total iframes seen on publisher pages / how many carried `sandbox`.
    pub iframe_census: (u64, u64),
    /// `top.location` hijacks that dragged crawled pages away / hijack
    /// attempts blocked by the `sandbox` attribute.
    pub hijack_counts: (u64, u64),
    /// Page loads performed.
    pub page_loads: u64,
    /// Filter-engine work counters for the crawl (lookups, memo hits and
    /// misses, candidate rules evaluated).
    pub filter: FilterCounts,
    /// Script-compilation cache counters for the crawl (lookups, cache hits
    /// and misses).
    pub script: ScriptCounts,
    /// Crawl-error accounting aggregated over every page visit: per-class
    /// failure counters plus retry and degraded/failed-visit tallies.
    pub errors: ErrorCounters,
    /// Wall-clock time the crawl stage took.
    pub wall: Duration,
}

/// Aggregated results of one full study run.
#[derive(Debug)]
pub struct StudyResults {
    /// Unique advertisements, classified. Sorted by creative for
    /// determinism.
    pub ads: Vec<ClassifiedAd>,
    /// Total (non-unique) ad observations.
    pub total_observations: u64,
    /// Per-site total ad observations.
    pub site_ad_observations: HashMap<SiteId, u64>,
    /// Total iframes seen on publisher pages / how many carried `sandbox`.
    pub iframe_census: (u64, u64),
    /// `top.location` hijacks that dragged crawled pages away / hijack
    /// attempts blocked by the `sandbox` attribute.
    pub hijack_counts: (u64, u64),
    /// Page loads performed.
    pub page_loads: u64,
    /// Run instrumentation: per-stage wall-clock timings and work counters.
    pub metrics: RunMetrics,
}

impl StudyResults {
    /// Unique ad count (the corpus size).
    pub fn unique_ads(&self) -> usize {
        self.ads.len()
    }

    /// Ads whose detection framework category is set (the paper's
    /// "incidents" population).
    pub fn detected_ads(&self) -> impl Iterator<Item = &ClassifiedAd> {
        self.ads.iter().filter(|a| a.category.is_some())
    }

    /// The typed machine-readable summary of the run (for dashboards and
    /// regression tracking).
    pub fn summary(&self) -> RunSummary {
        let mut categories: BTreeMap<String, u64> = BTreeMap::new();
        for ad in self.detected_ads() {
            *categories
                .entry(ad.category.expect("detected").label().to_string())
                .or_default() += 1;
        }
        let mut truth = GroundTruth::default();
        for ad in &self.ads {
            match (ad.truly_malicious, ad.category.is_some()) {
                (true, true) => truth.tp += 1,
                (false, true) => truth.fp += 1,
                (true, false) => truth.fn_ += 1,
                _ => {}
            }
        }
        RunSummary {
            unique_ads: self.unique_ads() as u64,
            observations: self.total_observations,
            page_loads: self.page_loads,
            detected: self.detected_ads().count() as u64,
            categories,
            ground_truth: truth,
            iframes: IframeCensus {
                total: self.iframe_census.0,
                sandboxed: self.iframe_census.1,
            },
            hijacks: HijackTally {
                exposed: self.hijack_counts.0,
                blocked: self.hijack_counts.1,
            },
            counters: self.metrics.counters,
            timings: self.metrics.timings().to_vec(),
            latencies: Vec::new(),
        }
    }

    /// [`StudyResults::summary`] with per-stage/per-worker latency
    /// histograms layered in from a collected trace.
    pub fn summary_with_trace(&self, report: &TraceReport) -> RunSummary {
        let mut summary = self.summary();
        summary.latencies = report.latencies();
        summary
    }

    /// [`StudyResults::summary`] as a single-line JSON object.
    pub fn summary_json(&self) -> String {
        self.summary().to_json()
    }
}

/// How a study executes, as opposed to *what* it measures
/// ([`StudyConfig`]): the trace sink, checkpointing, and engine geometry.
/// None of these affect results — runs are byte-identical across every
/// combination. Assembled through [`StudyBuilder`]; the default is the
/// plain untraced, uncheckpointed run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Sink every stage records on ([`TraceSink::disabled`] = tracing
    /// off, the default).
    pub trace: TraceSink,
    /// Checkpoint directory: the run writes shard-boundary snapshots of
    /// the exact completed prefix into it (`None` = no checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Snapshot every N shard boundaries (1 = every boundary; the final
    /// boundary of each stage always snapshots).
    pub checkpoint_every: u64,
    /// Jobs per engine shard in both stages — the scheduling granule and
    /// therefore the checkpoint granule. A pure speed/granularity knob.
    pub shard_size: usize,
    /// Park the run after this many shard boundaries per stage (`None` =
    /// run to completion). The kill/resume testing hook: a parked run
    /// returns `None` from [`Study::try_run`] with its snapshot written.
    pub abort_after_shards: Option<u64>,
    /// Run-health registry every stage samples into at shard boundaries
    /// ([`MetricsRegistry::disabled`] = metering off, the default). Like
    /// the trace sink, metering never affects results — the deterministic
    /// half of each sample is a pure function of the completed prefix.
    pub metrics: MetricsRegistry,
    /// Render a live stderr heartbeat at every shard boundary (requires an
    /// enabled metrics registry to have any effect).
    pub progress: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            trace: TraceSink::disabled(),
            checkpoint: None,
            checkpoint_every: 1,
            shard_size: 1024,
            abort_after_shards: None,
            metrics: MetricsRegistry::disabled(),
            progress: false,
        }
    }
}

/// The one front door to a configured run: measurement configuration,
/// execution options, and checkpoint resume in a single chain.
///
/// ```no_run
/// use malvert_core::study::{Study, StudyConfig};
/// let study = Study::builder()
///     .config(StudyConfig::tiny(2014))
///     .workers(8)
///     .checkpoint("ckpt")
///     .build()
///     .expect("fresh checkpoint directory");
/// let results = study.run();
/// ```
#[derive(Debug, Default, Clone)]
pub struct StudyBuilder {
    config: StudyConfig,
    options: RunOptions,
    resume: Option<PathBuf>,
}

impl StudyBuilder {
    /// Replaces the whole measurement configuration (the usual starting
    /// point; the field setters below tweak it from there).
    pub fn config(mut self, config: StudyConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the web population.
    pub fn web(mut self, web: WebConfig) -> Self {
        self.config.web = web;
        self
    }

    /// Sets the ad-economy population.
    pub fn ads(mut self, ads: AdWorldConfig) -> Self {
        self.config.ads = ads;
        self
    }

    /// Sets the crawl schedule.
    pub fn schedule(mut self, schedule: CrawlSchedule) -> Self {
        self.config.crawl.schedule = schedule;
        self
    }

    /// Sets the worker-thread count for both stages (1 = sequential).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.crawl.workers = workers;
        self
    }

    /// Attaches (or clears) seed-driven fault injection.
    pub fn faults(mut self, faults: Option<FaultProfile>) -> Self {
        self.config.faults = faults;
        self
    }

    /// Sets the per-worker filter-verdict memo capacity (0 disables).
    pub fn filter_memo(mut self, entries: usize) -> Self {
        self.config.crawl.filter_memo = entries;
        self
    }

    /// Sets the script compilation cache capacity (0 disables).
    pub fn script_cache(mut self, entries: usize) -> Self {
        self.config.crawl.script_cache = entries;
        self
    }

    /// Selects the script execution engine for both stages (bytecode VM by
    /// default; the tree-walk oracle computes identical answers slower, so
    /// switching can never change study output).
    pub fn script_engine(mut self, engine: ScriptEngine) -> Self {
        self.config.crawl.script_engine = engine;
        self
    }

    /// Sets EasyList coverage of ad-network serve domains.
    pub fn easylist_coverage(mut self, coverage: f64) -> Self {
        self.config.easylist_coverage = coverage;
        self
    }

    /// Attaches a trace sink; every stage of every run records on it.
    pub fn trace(mut self, trace: TraceSink) -> Self {
        self.options.trace = trace;
        self
    }

    /// Attaches a run-health metrics registry; every stage samples into it
    /// at each shard boundary (collect the time-series with
    /// [`MetricsRegistry::collect`] after the run).
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.options.metrics = metrics;
        self
    }

    /// Renders a live stderr heartbeat at every shard boundary (only with
    /// an enabled metrics registry attached).
    pub fn progress(mut self, on: bool) -> Self {
        self.options.progress = on;
        self
    }

    /// Enables checkpointing into `dir`.
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>) -> Self {
        self.options.checkpoint = Some(dir.into());
        self
    }

    /// Snapshots every `n` shard boundaries (default: every boundary).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.options.checkpoint_every = n.max(1);
        self
    }

    /// Sets the engine shard size (scheduling and checkpoint granule).
    pub fn shard_size(mut self, jobs: usize) -> Self {
        self.options.shard_size = jobs.max(1);
        self
    }

    /// Parks the run after `n` shard boundaries per stage — the
    /// kill/resume testing hook (see [`RunOptions::abort_after_shards`]).
    pub fn abort_after_shards(mut self, n: u64) -> Self {
        self.options.abort_after_shards = Some(n);
        self
    }

    /// Resumes from the snapshot in `dir`. Unless a different checkpoint
    /// directory was set explicitly, the resumed run keeps checkpointing
    /// into the same directory.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume = Some(dir.into());
        self
    }

    /// Builds the world and assembles the study; loads and validates the
    /// resume snapshot when one was requested.
    pub fn build(self) -> Result<Study, String> {
        let StudyBuilder {
            config,
            mut options,
            resume,
        } = self;
        let resume_state = match resume {
            Some(dir) => {
                let store = SnapshotStore::open(&dir).map_err(|e| {
                    format!("cannot open checkpoint directory {}: {e}", dir.display())
                })?;
                let snapshot = StudySnapshot::load(&store)
                    .map_err(|e| format!("cannot read checkpoint in {}: {e}", dir.display()))?
                    .ok_or_else(|| {
                        format!("no snapshot in checkpoint directory {}", dir.display())
                    })?;
                if options.checkpoint.is_none() {
                    options.checkpoint = Some(dir);
                }
                Some(snapshot)
            }
            None => None,
        };
        let mut study = Study::new(config);
        if let Some(snapshot) = &resume_state {
            snapshot
                .validate(study.config.seed, config_fingerprint(&study.config))
                .map_err(|e| format!("checkpoint does not match this study: {e}"))?;
        }
        study.options = options;
        study.resume_state = resume_state;
        Ok(study)
    }
}

/// Converts the engine's scheduling snapshot into the trace crate's plain
/// balance record. The indirection keeps `malvert-trace` free of an engine
/// dependency; a disabled run (no [`EngineStats`]) reports an empty balance.
fn engine_balance(stats: Option<&EngineStats>) -> EngineBalance {
    stats
        .map(|stats| {
            let snap = stats.snapshot();
            EngineBalance {
                steals: snap.steals,
                parks: snap.parks,
                worker_jobs: snap.worker_jobs,
            }
        })
        .unwrap_or_default()
}

/// Distills cumulative script counters into the trace crate's plain VM
/// meter record (same indirection as [`engine_balance`]: `malvert-trace`
/// stays free of an adscript dependency).
fn vm_meter(counts: ScriptCounts) -> VmMeter {
    VmMeter {
        dispatches: counts.bytecode_dispatches,
        ic_hits: counts.inline_cache_hits,
        ic_misses: counts.inline_cache_misses,
        shape_hits: counts.shape_hits,
        shape_transitions: counts.shape_transitions,
    }
}

/// The study driver.
pub struct Study {
    /// Configuration.
    pub config: StudyConfig,
    /// The assembled world.
    pub world: StudyWorld,
    /// Wall-clock time world generation took.
    build_wall: Duration,
    /// Execution options (trace sink, checkpointing, engine geometry).
    options: RunOptions,
    /// Loaded resume snapshot, consumed by the next crawl/classify pair.
    resume_state: Option<StudySnapshot>,
}

impl Study {
    /// Starts building a study — the front door for configured runs
    /// (trace sink, checkpointing, resume). See [`StudyBuilder`].
    pub fn builder() -> StudyBuilder {
        StudyBuilder::default()
    }

    /// Builds the world for a configuration. The campaign activity window is
    /// harmonized with the crawl schedule (campaigns activate over the first
    /// three quarters of the actual crawl window).
    pub fn new(mut config: StudyConfig) -> Study {
        let started = Instant::now();
        config.ads.campaigns.study_days = config.crawl.schedule.days.max(1);
        let mut world = StudyWorld::build(
            config.seed,
            &config.web,
            &config.ads,
            config.easylist_coverage,
            config.crawl.schedule.days,
        );
        world.network.set_fault_profile(config.faults);
        Study {
            config,
            world,
            build_wall: started.elapsed(),
            options: RunOptions::default(),
            resume_state: None,
        }
    }

    /// Assembles a study from an already-built world (countermeasure
    /// ablations mutate a world and re-run stages on it). The world-build
    /// timing is unknown here and reported as zero.
    pub fn from_parts(config: StudyConfig, mut world: StudyWorld) -> Study {
        world.network.set_fault_profile(config.faults);
        Study {
            config,
            world,
            build_wall: Duration::ZERO,
            options: RunOptions::default(),
            resume_state: None,
        }
    }

    /// The study's execution options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Runs the full pipeline: crawl, de-duplicate, classify, aggregate.
    ///
    /// # Panics
    /// Panics when the run parks at a checkpoint boundary
    /// ([`RunOptions::abort_after_shards`]); abortable runs go through
    /// [`Study::try_run`] instead.
    pub fn run(&self) -> StudyResults {
        self.try_run().expect(PARKED)
    }

    /// [`Study::run`], surfacing a checkpoint park as `None` instead of
    /// panicking. A parked run has already written its snapshot; a new
    /// study built with [`StudyBuilder::resume`] picks up from it.
    pub fn try_run(&self) -> Option<StudyResults> {
        let crawl = self.crawl_with(&self.options.trace)?;
        self.classify_with(crawl, &self.options.trace)
    }

    /// Stage 1+2: crawl the Web and build the de-duplicated corpus, with
    /// per-ad chain-length tallies. On a traced study this records a stage
    /// span plus one [`SpanKind::CrawlVisit`] span per page load (sharded
    /// per worker), and back-fills the world-build stage as an
    /// already-completed span.
    ///
    /// # Panics
    /// Panics when the stage parks at a checkpoint boundary (see
    /// [`Study::try_run`]).
    pub fn crawl(&self) -> CrawlSummary {
        self.crawl_with(&self.options.trace).expect(PARKED)
    }

    /// Opens the snapshot store when checkpointing is configured.
    fn checkpoint_store(&self) -> Option<SnapshotStore> {
        self.options
            .checkpoint
            .as_deref()
            .map(|dir| SnapshotStore::open(dir).expect("checkpoint directory must be creatable"))
    }

    /// The crawl stage on the engine: visit records stream into a
    /// [`CrawlAggregate`] as they complete, the exact prefix fold is
    /// snapshotted at shard boundaries when checkpointing, and a loaded
    /// snapshot seeds the fold so only the remaining visits run. Returns
    /// `None` when the run parked early.
    fn crawl_with(&self, trace: &TraceSink) -> Option<CrawlSummary> {
        trace.span_completed(SpanKind::WorldBuild, "world build", self.build_wall);
        let stage_span = trace.span(SpanKind::Crawl, "crawl");
        let started = Instant::now();
        let filter_stats = FilterStats::new();
        let script_stats = ScriptStats::new();
        let crawler = Crawler::builder(&self.world.network, &self.world.filter)
            .config(self.config.crawl.clone())
            .seeds(self.world.tree)
            .trace(trace.clone())
            .filter_stats(filter_stats.clone())
            .script_stats(script_stats.clone())
            .metrics(self.options.metrics.clone())
            .build();
        let sites = &self.world.web.sites;
        let total = crawler.total_jobs(sites);
        // Resume: rebuild the prefix fold and the counter bases. A snapshot
        // parked in the classify phase means the crawl already completed —
        // start at `total`, and the engine runs zero shards.
        let (aggregate, filter_base, script_base, start_job) = match &self.resume_state {
            Some(snap) => {
                let start = match snap.phase {
                    Phase::Crawl => snap.next_job,
                    Phase::Classify => total,
                };
                let (aggregate, filter_base, script_base) = snap.crawl.clone().into_parts();
                (aggregate, filter_base, script_base, start)
            }
            None => (
                CrawlAggregate::new(),
                FilterBase::default(),
                ScriptBase::default(),
                0,
            ),
        };
        let store = self.checkpoint_store();
        let every = self.options.checkpoint_every.max(1);
        let abort = self.options.abort_after_shards;
        let seed = self.config.seed;
        let fingerprint = config_fingerprint(&self.config);
        let metrics = &self.options.metrics;
        let estats = metrics
            .is_enabled()
            .then(|| EngineStats::new(self.config.crawl.workers));
        let sampler = metrics.stage(
            "crawl",
            start_job as u64,
            total as u64,
            self.options.shard_size as u64,
            self.options.progress,
        );
        let mut shard = 0u64;
        let (aggregate, next) = crawler.run_aggregate(
            sites,
            aggregate,
            start_job,
            self.options.shard_size,
            estats.as_ref(),
            |aggregate, next| {
                shard += 1;
                let stop = abort.is_some_and(|limit| shard >= limit);
                if let Some(store) = &store {
                    if stop || next >= total || shard.is_multiple_of(every) {
                        let snapshot = StudySnapshot {
                            version: SNAPSHOT_VERSION,
                            seed,
                            fingerprint,
                            phase: Phase::Crawl,
                            next_job: next,
                            crawl: CrawlState::from_aggregate(
                                aggregate,
                                filter_base.plus(filter_stats.snapshot()),
                                script_base.plus(script_stats.snapshot()),
                            ),
                            oracle_visits: 0,
                            oracle_feed_lookups: 0,
                            oracle_budget_exhaustions: 0,
                            classify_script: ScriptBase::default(),
                            classified: Vec::new(),
                        };
                        let write_started = Instant::now();
                        let bytes = snapshot.save(store).expect("checkpoint write failed");
                        metrics.checkpoint_written(bytes, write_started.elapsed());
                    }
                }
                if sampler.is_enabled() {
                    // Every counter here is a pure function of the completed
                    // prefix (the boundary contract), so the sample's
                    // deterministic payload is byte-identical across worker
                    // counts. The scheduling-dependent filter/script cache
                    // splits stay out for exactly that reason.
                    let counters = BTreeMap::from([
                        ("page_loads".to_string(), aggregate.page_loads),
                        (
                            "observations".to_string(),
                            aggregate.corpus.total_observations(),
                        ),
                        (
                            "unique_ads".to_string(),
                            aggregate.corpus.unique_count() as u64,
                        ),
                        ("errors_total".to_string(), aggregate.errors.total_errors()),
                        ("retries".to_string(), aggregate.errors.retries),
                        (
                            "degraded_visits".to_string(),
                            aggregate.errors.degraded_visits,
                        ),
                        ("failed_visits".to_string(), aggregate.errors.failed_visits),
                    ]);
                    sampler.sample(
                        shard,
                        next as u64,
                        counters,
                        engine_balance(estats.as_ref()),
                        vm_meter(script_base.plus(script_stats.snapshot())),
                    );
                }
                if stop {
                    Boundary::Stop
                } else {
                    Boundary::Continue
                }
            },
        );
        stage_span.finish();
        if next < total {
            return None;
        }
        Some(CrawlSummary {
            corpus: aggregate.corpus,
            chain_lengths: aggregate.chain_lengths,
            site_ad_observations: aggregate.site_ad_observations,
            iframe_census: aggregate.iframe_census,
            hijack_counts: aggregate.hijack_counts,
            page_loads: aggregate.page_loads,
            filter: filter_base.plus(filter_stats.snapshot()),
            script: script_base.plus(script_stats.snapshot()),
            errors: aggregate.errors,
            wall: started.elapsed(),
        })
    }

    /// Stage 3+4: classify every unique ad and aggregate. Classification
    /// runs on the engine over `config.crawl.workers` threads; each ad's
    /// oracle seed is derived from the study tree by the ad's stable
    /// [`creative_key`], so the results are byte-identical at any worker
    /// count. On a traced study this records stage spans for classify and
    /// aggregate, plus per-advertisement [`SpanKind::ClassifyAd`] spans
    /// carrying the honeyclient visit, blacklist lookups, payload scans,
    /// and incident records of each unique ad.
    ///
    /// # Panics
    /// Panics when the stage parks at a checkpoint boundary (see
    /// [`Study::try_run`]).
    pub fn classify(&self, crawl: CrawlSummary) -> StudyResults {
        self.classify_with(crawl, &self.options.trace)
            .expect(PARKED)
    }

    /// The classify+aggregate stage on the engine. The shared oracle is
    /// re-bound to each ad's scoped sink (keyed by creative key), which
    /// keeps per-unit sequence numbers — and therefore the stripped trace
    /// — byte-identical across worker counts. Shards complete in order, so
    /// the classified prefix is contiguous at every boundary and snapshots
    /// carry it verbatim. Returns `None` when the run parked early.
    fn classify_with(&self, crawl: CrawlSummary, trace: &TraceSink) -> Option<StudyResults> {
        let stage_span = trace.span(SpanKind::Classify, "classify");
        let started = Instant::now();
        let store = self.checkpoint_store();
        // Classify-phase snapshots embed the completed crawl; capture it
        // before the summary is torn apart.
        let crawl_state = store.as_ref().map(|_| CrawlState::from_summary(&crawl));
        let CrawlSummary {
            corpus,
            chain_lengths,
            site_ad_observations,
            iframe_census,
            hijack_counts,
            page_loads,
            filter,
            script,
            errors,
            wall: crawl_wall,
        } = crawl;

        // Blacklist knowledge per ad: the feeds are monitored continuously,
        // so each ad is checked against everything the feeds learned while
        // the ad was live — i.e. at its *last* observation day. Ads from
        // freshly-registered campaign infrastructure therefore evade the
        // threshold (feed lag), and the behavioural rows of Table 1 catch
        // them instead — the same dynamic the paper observed. A global
        // override supports retrospective-evaluation ablations.
        let eval_override = self.config.blacklist_eval_day;
        let stats = OracleStats::new();
        // Classification gets its own compile cache (same capacity knob as
        // the crawl's): the honeyclient re-visits the same creatives the
        // crawl rendered, so nearly every compile is a hit.
        let classify_script_stats = ScriptStats::new();
        let classify_script_cache = ScriptCache::new(
            self.config.crawl.script_cache,
            classify_script_stats.clone(),
        );
        let oracle = Oracle::builder(
            &self.world.network,
            &self.world.blacklists,
            &self.world.scanner,
        )
        .known_models(self.seed_models())
        .seeds(self.world.tree)
        .stats(stats.clone())
        .script_cache(classify_script_cache)
        .script_engine(self.config.crawl.script_engine)
        .build();
        let truth_map = self.creative_truth_map();

        let uniques = corpus.ads_sorted();
        let total = uniques.len();
        // Resume: pre-fill the classified prefix and the counter bases.
        let (slots, start_job, oracle_base, classify_script_base) = match &self.resume_state {
            Some(snap) if snap.phase == Phase::Classify => {
                let mut slots: Vec<Option<ClassifiedAd>> =
                    snap.classified.iter().cloned().map(Some).collect();
                slots.resize_with(total, || None);
                let base = (
                    snap.oracle_visits,
                    snap.oracle_feed_lookups,
                    snap.oracle_budget_exhaustions,
                );
                (slots, snap.next_job.min(total), base, snap.classify_script)
            }
            _ => {
                let mut slots: Vec<Option<ClassifiedAd>> = Vec::new();
                slots.resize_with(total, || None);
                (slots, 0, (0, 0, 0), ScriptBase::default())
            }
        };
        let every = self.options.checkpoint_every.max(1);
        let abort = self.options.abort_after_shards;
        let seed = self.config.seed;
        let fingerprint = config_fingerprint(&self.config);
        let mut shard = 0u64;
        let engine = EngineConfig::new(self.config.crawl.workers, self.options.shard_size);
        let registry = &self.options.metrics;
        let estats = registry
            .is_enabled()
            .then(|| EngineStats::new(self.config.crawl.workers));
        let sampler = registry.stage(
            "classify",
            start_job as u64,
            total as u64,
            self.options.shard_size as u64,
            self.options.progress,
        );
        let outcome = run_fold_observed(
            &engine,
            estats.as_ref(),
            start_job..total,
            slots,
            |worker| (trace.for_worker(worker as u32), registry.for_worker()),
            |(wtrace, wmetrics), job| {
                let timer = wmetrics.start();
                let classified = self.classify_one(
                    &oracle,
                    uniques[job],
                    &truth_map,
                    &chain_lengths,
                    eval_override,
                    wtrace,
                );
                wmetrics.record_classify(timer);
                classified
            },
            |slots, job, classified| slots[job] = Some(classified),
            |slots, next| {
                shard += 1;
                let stop = abort.is_some_and(|limit| shard >= limit);
                if let Some(store) = &store {
                    if stop || next >= total || shard.is_multiple_of(every) {
                        let snapshot = StudySnapshot {
                            version: SNAPSHOT_VERSION,
                            seed,
                            fingerprint,
                            phase: Phase::Classify,
                            next_job: next,
                            crawl: crawl_state.clone().expect("captured alongside the store"),
                            oracle_visits: oracle_base.0 + stats.visits(),
                            oracle_feed_lookups: oracle_base.1 + stats.feed_lookups(),
                            oracle_budget_exhaustions: oracle_base.2 + stats.budget_exhaustions(),
                            classify_script: ScriptBase::capture(
                                classify_script_base.plus(classify_script_stats.snapshot()),
                            ),
                            classified: slots[..next]
                                .iter()
                                .map(|slot| slot.clone().expect("prefix complete at boundary"))
                                .collect(),
                        };
                        let write_started = Instant::now();
                        let bytes = snapshot.save(store).expect("checkpoint write failed");
                        registry.checkpoint_written(bytes, write_started.elapsed());
                    }
                }
                if sampler.is_enabled() {
                    // Per-ad oracle work is seed-derived and shards complete
                    // in order, so these prefix sums are scheduling-free.
                    let counters = BTreeMap::from([
                        ("oracle_visits".to_string(), oracle_base.0 + stats.visits()),
                        (
                            "feed_lookups".to_string(),
                            oracle_base.1 + stats.feed_lookups(),
                        ),
                        (
                            "budget_exhaustions".to_string(),
                            oracle_base.2 + stats.budget_exhaustions(),
                        ),
                    ]);
                    sampler.sample(
                        shard,
                        next as u64,
                        counters,
                        engine_balance(estats.as_ref()),
                        vm_meter(classify_script_base.plus(classify_script_stats.snapshot())),
                    );
                }
                if stop {
                    Boundary::Stop
                } else {
                    Boundary::Continue
                }
            },
        );
        if outcome.next_job < total {
            stage_span.finish();
            return None;
        }
        let ads: Vec<ClassifiedAd> = outcome
            .state
            .into_iter()
            .map(|slot| slot.expect("every ad classified"))
            .collect();
        let classify_wall = started.elapsed();
        let classify_script = classify_script_base.plus(classify_script_stats.snapshot());
        stage_span.finish();

        let aggregate_span = trace.span(SpanKind::Aggregate, "aggregate");
        let aggregate_started = Instant::now();
        let counters = RunCounters {
            page_loads,
            ads_observed: corpus.total_observations(),
            unique_ads: corpus.unique_count() as u64,
            oracle_executions: oracle_base.0 + stats.visits(),
            script_budgets_exhausted: oracle_base.2 + stats.budget_exhaustions(),
            feed_lookups: oracle_base.1 + stats.feed_lookups(),
            filter_lookups: filter.lookups,
            filter_cache_hits: filter.cache_hits,
            filter_cache_misses: filter.cache_misses,
            filter_candidates_evaluated: filter.candidates_evaluated,
            script_lookups: script.lookups + classify_script.lookups,
            script_cache_hits: script.cache_hits + classify_script.cache_hits,
            script_cache_misses: script.cache_misses + classify_script.cache_misses,
            bytecode_dispatches: script.bytecode_dispatches + classify_script.bytecode_dispatches,
            inline_cache_hits: script.inline_cache_hits + classify_script.inline_cache_hits,
            inline_cache_misses: script.inline_cache_misses + classify_script.inline_cache_misses,
            shape_hits: script.shape_hits + classify_script.shape_hits,
            shape_transitions: script.shape_transitions + classify_script.shape_transitions,
            errors,
            ..RunCounters::default()
        };
        let mut metrics = RunMetrics::new(counters);
        metrics.record(StageId::WorldBuild, self.build_wall);
        metrics.record(StageId::Crawl, crawl_wall);
        metrics.record(StageId::Classify, classify_wall);
        let mut results = StudyResults {
            ads,
            total_observations: corpus.total_observations(),
            site_ad_observations,
            iframe_census,
            hijack_counts,
            page_loads,
            metrics,
        };
        results
            .metrics
            .record(StageId::Aggregate, aggregate_started.elapsed());
        aggregate_span.finish();
        Some(results)
    }

    fn classify_one(
        &self,
        oracle: &Oracle<'_>,
        unique: &UniqueAd,
        truth_map: &HashMap<u64, CampaignId>,
        chain_lengths: &HashMap<u64, BTreeMap<usize, u64>>,
        eval_override: Option<u32>,
        trace: &TraceSink,
    ) -> ClassifiedAd {
        // Honeyclient re-visit at the first observation time; blacklist
        // knowledge evaluated at `eval_day` (the ad's last observation day,
        // unless globally overridden). The visit's script randomness comes
        // from a seed branch keyed by the ad's stable creative key, making
        // each classification independent of every other — the property the
        // worker pool's byte-identity rests on. The trace sink is scoped by
        // the same key, so all of one ad's events share one unit with a
        // fresh sequence counter regardless of which worker runs it.
        let eval_day = eval_override.unwrap_or(unique.last_seen.day);
        let ad_seeds = self
            .world
            .tree
            .branch("classify")
            .branch_idx(unique.creative_key);
        let request_url = unique.request_url.clone();
        let scoped = trace.scoped(unique.creative_key);
        let ad_span = scoped.span(SpanKind::ClassifyAd, request_url.to_string());
        let ad_oracle = oracle.with_trace(scoped.clone());
        let visit = ad_oracle.honeyclient_visit_seeded(&request_url, unique.first_seen, ad_seeds);
        let eval_time = SimTime::at(eval_day, 0);
        let incidents = ad_oracle.classify_visit(&visit, eval_time);
        ad_span.finish();
        let category = Self::categorize(&incidents);
        let contacted_hosts: Vec<String> = visit
            .capture
            .hosts()
            .into_iter()
            .map(|h| h.to_string())
            .collect();

        let chain_networks: Vec<AdNetworkId> = unique
            .max_chain
            .iter()
            .filter_map(|u: &Url| u.host().and_then(|h| self.world.network_of(h)))
            .collect();
        // The filling network: the final URL's host, or — when the creative
        // navigated away before the snapshot (cloaking bounces) — the last
        // ad-network hop of the captured chain.
        let serving_network = unique
            .final_url
            .host()
            .and_then(|h| self.world.network_of(h))
            .or_else(|| chain_networks.last().copied());

        let truth_campaign = truth_map.get(&unique.creative_key).copied();
        let truly_malicious = truth_campaign
            .map(|id| self.world.ads.campaigns()[id.index()].is_malicious())
            .unwrap_or(false);

        ClassifiedAd {
            request_url: request_url.to_string(),
            creative_key: unique.creative_key,
            first_seen: unique.first_seen,
            observations: unique.observations,
            sites: unique.sites.clone(),
            serving_network,
            chain_networks,
            max_chain_len: unique.max_chain.len().max(1),
            incidents,
            category,
            truth_campaign,
            truly_malicious,
            chain_length_counts: chain_lengths
                .get(&unique.creative_key)
                .cloned()
                .unwrap_or_default(),
            contacted_hosts,
        }
    }

    /// Table 1 categories are exclusive — the rows sum to the total — so a
    /// single category is assigned with first-match precedence in row order.
    fn categorize(incidents: &[Incident]) -> Option<IncidentType> {
        IncidentType::ALL
            .iter()
            .copied()
            .find(|t| incidents.iter().any(|i| i.incident_type == *t))
    }

    /// Builds the creative → campaign ground-truth map by rendering every
    /// campaign variant (creatives are deterministic, so the map is exact).
    /// Keyed by [`creative_key`] to avoid holding a second copy of every
    /// creative document.
    fn creative_truth_map(&self) -> HashMap<u64, CampaignId> {
        let mut map = HashMap::new();
        for campaign in self.world.ads.campaigns() {
            for variant in 0..campaign.variant_count {
                map.insert(
                    creative_key(&malvert_adnet::creative::render_creative(campaign, variant)),
                    campaign.id,
                );
            }
        }
        map
    }

    /// Seeds the model database: a pre-study pass (the "previous work" the
    /// paper's models came from) visits serve URLs until it confirms
    /// `model_seed_count` malicious behaviours by ground truth, and stores
    /// their fingerprints.
    fn seed_models(&self) -> Vec<u64> {
        if self.config.model_seed_count == 0 {
            return Vec::new();
        }
        let malicious_domains: Vec<String> = self
            .world
            .ads
            .malicious_ground_truth()
            .iter()
            .flat_map(|(_, ds, _)| ds.iter().map(|d| d.to_string()))
            .collect();
        let oracle = Oracle::builder(
            &self.world.network,
            &self.world.blacklists,
            &self.world.scanner,
        )
        .seeds(self.world.tree)
        .build();
        let mut models = Vec::new();
        'outer: for network_idx in 0..self.world.ads.networks().len() as u32 {
            for slot in 0..10usize {
                let url =
                    self.world
                        .ads
                        .serve_url(AdNetworkId(network_idx), 90_000 + slot as u32, slot);
                let visit = oracle.honeyclient_visit(&url, SimTime::at(70, 4));
                let confirmed = visit
                    .capture
                    .hosts()
                    .iter()
                    .any(|h| malicious_domains.contains(&h.to_string()));
                if confirmed {
                    let fp = behavior_fingerprint(&visit);
                    if !models.contains(&fp) {
                        models.push(fp);
                        if models.len() >= self.config.model_seed_count {
                            break 'outer;
                        }
                    }
                }
            }
        }
        models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tiny() -> (Study, StudyResults) {
        let study = Study::new(StudyConfig::tiny(11));
        let results = study.run();
        (study, results)
    }

    #[test]
    fn pipeline_produces_corpus_and_classifications() {
        let (study, results) = run_tiny();
        assert!(
            results.unique_ads() > 50,
            "corpus too small: {}",
            results.unique_ads()
        );
        assert!(results.total_observations > results.unique_ads() as u64);
        let expected_loads =
            study.config.web.total_sites() as u64 * study.config.crawl.schedule.loads_per_site();
        assert_eq!(results.page_loads, expected_loads);
    }

    #[test]
    fn staged_api_exposes_crawl_summary() {
        let study = Study::new(StudyConfig::tiny(11));
        let crawl = study.crawl();
        assert!(crawl.corpus.unique_count() > 0);
        assert_eq!(
            crawl.chain_lengths.len(),
            crawl.corpus.unique_count(),
            "every unique ad has a chain tally"
        );
        let results = study.classify(crawl);
        assert_eq!(
            results.metrics.counters.unique_ads as usize,
            results.unique_ads()
        );
    }

    #[test]
    fn some_malvertising_detected_with_categories() {
        let (_, results) = run_tiny();
        let detected: Vec<_> = results.detected_ads().collect();
        assert!(!detected.is_empty(), "no malvertising detected at all");
        // Every detected ad has exactly one category.
        for ad in &detected {
            assert!(ad.category.is_some());
        }
    }

    #[test]
    fn detection_is_mostly_correct() {
        let (_, results) = run_tiny();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for ad in &results.ads {
            match (ad.truly_malicious, ad.category.is_some()) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
        assert!(tp > 0, "no true positives");
        // Precision must be high — blacklist threshold and scanner consensus
        // are tuned against FPs.
        assert!(
            fp * 5 <= tp.max(1),
            "poor precision: tp={tp} fp={fp} fn={fn_}"
        );
    }

    #[test]
    fn truth_map_resolves_most_ads() {
        let (_, results) = run_tiny();
        let mapped = results
            .ads
            .iter()
            .filter(|a| a.truth_campaign.is_some())
            .count();
        // House ads are unmapped; the overwhelming majority map to campaigns.
        assert!(
            mapped * 10 >= results.ads.len() * 9,
            "{mapped}/{} creatives mapped",
            results.ads.len()
        );
    }

    #[test]
    fn serving_network_attributed() {
        let (_, results) = run_tiny();
        let attributed = results
            .ads
            .iter()
            .filter(|a| a.serving_network.is_some())
            .count();
        assert_eq!(
            attributed,
            results.ads.len(),
            "every fill comes from a network"
        );
    }

    #[test]
    fn chains_observed_and_bounded() {
        let (_, results) = run_tiny();
        let max = results.ads.iter().map(|a| a.max_chain_len).max().unwrap();
        assert!(max >= 3, "no arbitration chains in corpus");
        assert!(max <= 41, "chain exceeds bound: {max}");
        // chain_length_counts must be populated and consistent.
        for ad in &results.ads {
            let total: u64 = ad.chain_length_counts.values().sum();
            assert_eq!(total, ad.observations);
        }
    }

    #[test]
    fn no_sandbox_in_default_world() {
        let (_, results) = run_tiny();
        assert!(results.iframe_census.0 > 0);
        assert_eq!(results.iframe_census.1, 0);
    }

    #[test]
    fn faulted_run_completes_and_counts_errors() {
        let mut config = StudyConfig::tiny(31);
        config.faults = Some(FaultProfile::heavy());
        let study = Study::new(config);
        let results = study.run();
        let errors = results.metrics.counters.errors;
        // Heavy chaos across thousands of requests: faults certainly landed,
        // some visits degraded — and the pipeline still produced a corpus.
        assert!(errors.total_errors() > 0, "heavy profile injected nothing");
        assert!(
            errors.degraded_visits > 0,
            "no visit degraded under heavy chaos"
        );
        assert!(results.unique_ads() > 0, "faulted crawl produced no corpus");
    }

    #[test]
    fn run_is_deterministic() {
        let a = Study::new(StudyConfig::tiny(21)).run();
        let b = Study::new(StudyConfig::tiny(21)).run();
        assert_eq!(a.unique_ads(), b.unique_ads());
        assert_eq!(a.total_observations, b.total_observations);
        for (x, y) in a.ads.iter().zip(&b.ads) {
            assert_eq!(x.request_url, y.request_url);
            assert_eq!(x.category, y.category);
            assert_eq!(x.observations, y.observations);
        }
    }

    #[test]
    fn builder_matches_plain_construction() {
        let a = Study::new(StudyConfig::tiny(11)).run();
        let b = Study::builder()
            .config(StudyConfig::tiny(11))
            .build()
            .expect("no resume requested")
            .run();
        assert_eq!(
            serde_json::to_string(&a.ads).unwrap(),
            serde_json::to_string(&b.ads).unwrap(),
            "builder-built study must be byte-identical to plain construction"
        );
    }

    #[test]
    fn builder_setters_reach_the_config() {
        let study = Study::builder()
            .config(StudyConfig::tiny(7))
            .seed(99)
            .workers(2)
            .shard_size(64)
            .checkpoint_every(3)
            .build()
            .expect("no resume requested");
        assert_eq!(study.config.seed, 99);
        assert_eq!(study.config.crawl.workers, 2);
        assert_eq!(study.options().shard_size, 64);
        assert_eq!(study.options().checkpoint_every, 3);
    }

    #[test]
    fn abortable_run_parks_without_completing() {
        let study = Study::builder()
            .config(StudyConfig::tiny(11))
            .shard_size(64)
            .abort_after_shards(1)
            .build()
            .expect("no resume requested");
        assert!(
            study.try_run().is_none(),
            "run must park at the first shard boundary"
        );
    }

    #[test]
    fn resume_without_a_snapshot_is_an_error() {
        let dir = std::env::temp_dir().join("malvert-empty-checkpoint-test");
        let err = Study::builder()
            .config(StudyConfig::tiny(11))
            .resume(&dir)
            .build();
        assert!(err.is_err(), "resume without a snapshot must fail to build");
    }
}
