//! Run instrumentation: per-stage wall-clock timings, pipeline counters,
//! and the typed [`RunSummary`] the study exports.
//!
//! The pipeline is four stages — world generation, crawl, classification,
//! aggregation — and a production-scale run needs each one independently
//! observable: regressions hide inside end-to-end totals. [`RunMetrics`]
//! rides along in [`StudyResults`](crate::study::StudyResults);
//! [`RunSummary`] is the stable machine-readable surface (JSON) consumed by
//! dashboards, the BENCH trajectory, and `malvert run`.
//!
//! Timings are wall-clock and therefore non-deterministic; everything else
//! in the summary is a pure function of the study seed.
//! [`RunSummary::without_timings`] strips the non-deterministic part so
//! byte-identity checks across worker counts can compare full summaries.

use malvert_trace::SpanLatency;
use malvert_types::ErrorCounters;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StageId {
    /// World generation: web + ad economy + oracle services + filter list.
    WorldBuild,
    /// The crawl: every site through the full schedule, corpus building.
    Crawl,
    /// Classification: one honeyclient re-visit + oracle pass per unique ad.
    Classify,
    /// Aggregation: assembling `StudyResults` from classified ads.
    Aggregate,
}

impl StageId {
    /// Every stage, in pipeline order.
    pub const ALL: [StageId; 4] = [
        StageId::WorldBuild,
        StageId::Crawl,
        StageId::Classify,
        StageId::Aggregate,
    ];

    /// Human-readable stage name.
    pub fn label(self) -> &'static str {
        match self {
            StageId::WorldBuild => "world build",
            StageId::Crawl => "crawl",
            StageId::Classify => "classify",
            StageId::Aggregate => "aggregate",
        }
    }
}

/// Wall-clock time one stage took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Which stage.
    pub stage: StageId,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
}

/// Pipeline work counters. All are exact tallies; every counter except the
/// filter-memo split and candidate tally is deterministic in the study seed
/// (unlike the timings). The memo is per-worker, so which lookups hit it —
/// and therefore how many candidate evaluations the misses cost — depends
/// on how the scheduler dealt visits to workers;
/// [`RunSummary::without_timings`] zeroes those scheduling-dependent fields
/// while keeping the deterministic lookup total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounters {
    /// Publisher page loads the crawl performed.
    pub page_loads: u64,
    /// Ad observations recorded (non-unique).
    pub ads_observed: u64,
    /// Unique advertisements in the corpus.
    pub unique_ads: u64,
    /// Oracle honeyclient executions (one per unique ad).
    pub oracle_executions: u64,
    /// Scripts that exhausted the interpreter step budget during oracle
    /// visits.
    pub script_budgets_exhausted: u64,
    /// Blacklist-feed lookups (one per distinct contacted host per
    /// classified visit).
    pub feed_lookups: u64,
    /// Filter-list match queries the crawl performed (one per candidate
    /// iframe; memo hits included). Deterministic in the study seed.
    #[serde(default)]
    pub filter_lookups: u64,
    /// Filter queries answered from a per-worker verdict memo.
    /// Scheduling-dependent: stripped by [`RunSummary::without_timings`].
    #[serde(default)]
    pub filter_cache_hits: u64,
    /// Filter queries that ran the matcher. Scheduling-dependent (the
    /// complement of the hits): stripped by
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub filter_cache_misses: u64,
    /// Candidate rules the token index evaluated across all misses.
    /// Scheduling-dependent (proportional to misses): stripped by
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub filter_candidates_evaluated: u64,
    /// Script compile-cache lookups (one per script compile attempt, crawl
    /// and classification combined; cache hits included). Deterministic in
    /// the study seed.
    #[serde(default)]
    pub script_lookups: u64,
    /// Script compiles answered from the shared compile cache.
    /// Scheduling-dependent (concurrent first compiles race): stripped by
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub script_cache_hits: u64,
    /// Script compiles that actually ran the parser. Scheduling-dependent
    /// (the complement of the hits): stripped by
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub script_cache_misses: u64,
    /// Bytecode instructions the VM engine dispatched (crawl and
    /// classification combined). Engine-dependent (zero under the tree-walk
    /// oracle), so cross-engine byte-identity requires stripping it:
    /// zeroed by [`RunSummary::without_timings`].
    #[serde(default)]
    pub bytecode_dispatches: u64,
    /// VM inline-cache hits on property and global accesses.
    /// Engine-dependent: stripped by [`RunSummary::without_timings`].
    #[serde(default)]
    pub inline_cache_hits: u64,
    /// VM inline-cache misses (cold accesses). Engine-dependent: stripped
    /// by [`RunSummary::without_timings`].
    #[serde(default)]
    pub inline_cache_misses: u64,
    /// VM IC hits certified by a hidden-class shape check (property reads
    /// and writes served straight off a cached slot offset; a subset of
    /// `inline_cache_hits`). Engine-dependent: stripped by
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub shape_hits: u64,
    /// Hidden-class shape transitions the VM performed (property appends
    /// on plain objects, cached or cold). Engine-dependent: stripped by
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub shape_transitions: u64,
    /// Impressions the serve daemon ingested from its replayed stream
    /// (service mode only; zero for batch studies). Deterministic in the
    /// serve seed, so it survives [`RunSummary::without_timings`].
    #[serde(default)]
    pub serve_ingested: u64,
    /// Oracle scans the serve daemon admitted (first scans and TTL
    /// re-scans). Deterministic in the serve seed.
    #[serde(default)]
    pub serve_scans: u64,
    /// Impressions answered from a fresh verdict-cache entry without a
    /// scan. Deterministic: the serve cache is folded at shard boundaries,
    /// not per-worker.
    #[serde(default)]
    pub serve_cache_hits: u64,
    /// TTL-expired verdicts refreshed by a re-scan. Deterministic in the
    /// serve seed.
    #[serde(default)]
    pub serve_rescans: u64,
    /// Scan candidates dropped by backpressure (the per-shard scan queue
    /// was full). Deterministic: admission is a pure function of the
    /// stream prefix. The daemon's load-shedding signal.
    #[serde(default)]
    pub serve_shed: u64,
    /// TTL-expired cache entries still awaiting a re-scan at the end of
    /// the run (the re-scan backlog gauge). Deterministic in the serve
    /// seed.
    #[serde(default)]
    pub serve_rescan_backlog: u64,
    /// Per-class crawl-error counters aggregated over every page visit
    /// (faults injected and genuine, recovered and not), plus retry and
    /// degraded/failed-visit tallies. Every field is a pure function of the
    /// study seed and fault profile, so the whole block survives
    /// [`RunSummary::without_timings`].
    #[serde(default)]
    pub errors: ErrorCounters,
}

/// Instrumentation for one pipeline run: stage timings plus counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunMetrics {
    timings: Vec<StageTiming>,
    /// Pipeline work counters.
    pub counters: RunCounters,
}

impl RunMetrics {
    /// Metrics with the given counters and no timings recorded yet.
    pub fn new(counters: RunCounters) -> Self {
        RunMetrics {
            timings: Vec::new(),
            counters,
        }
    }

    /// Records a stage's wall-clock duration. Stages are expected to be
    /// recorded in pipeline order, once each.
    pub fn record(&mut self, stage: StageId, wall: Duration) {
        self.timings.push(StageTiming {
            stage,
            wall_us: wall.as_micros() as u64,
        });
    }

    /// The recorded timings, in recording (pipeline) order.
    pub fn timings(&self) -> &[StageTiming] {
        &self.timings
    }

    /// Wall-clock microseconds of one stage, if recorded.
    pub fn stage_wall_us(&self, stage: StageId) -> Option<u64> {
        self.timings
            .iter()
            .find(|t| t.stage == stage)
            .map(|t| t.wall_us)
    }

    /// Total wall-clock microseconds across all recorded stages.
    pub fn total_wall_us(&self) -> u64 {
        self.timings.iter().map(|t| t.wall_us).sum()
    }
}

/// Ground-truth confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Truly malicious ads the framework detected.
    pub tp: u64,
    /// Benign ads the framework flagged.
    pub fp: u64,
    /// Truly malicious ads the framework missed.
    #[serde(rename = "fn")]
    pub fn_: u64,
}

/// The §4.4 iframe census.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IframeCensus {
    /// Iframes seen on publisher pages.
    pub total: u64,
    /// How many carried the `sandbox` attribute.
    pub sandboxed: u64,
}

/// `top.location` hijack tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HijackTally {
    /// Hijacks that dragged a crawled page away.
    pub exposed: u64,
    /// Attempts blocked by the `sandbox` attribute.
    pub blocked: u64,
}

/// The stable machine-readable summary of one study run. The field set is
/// a superset of the legacy `summary_json` keys, plus the run counters and
/// per-stage timings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Unique advertisements in the corpus.
    pub unique_ads: u64,
    /// Total (non-unique) ad observations.
    pub observations: u64,
    /// Page loads performed.
    pub page_loads: u64,
    /// Ads with a detection category.
    pub detected: u64,
    /// Detected ads per Table 1 category label.
    pub categories: std::collections::BTreeMap<String, u64>,
    /// Confusion counts against campaign ground truth.
    pub ground_truth: GroundTruth,
    /// The iframe census.
    pub iframes: IframeCensus,
    /// Hijack exposure tallies.
    pub hijacks: HijackTally,
    /// Pipeline work counters.
    pub counters: RunCounters,
    /// Per-stage wall-clock timings (empty after
    /// [`RunSummary::without_timings`]).
    pub timings: Vec<StageTiming>,
    /// Per-span-kind (and per-worker) latency histograms from the trace
    /// subsystem. Empty when the run was not traced.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub latencies: Vec<SpanLatency>,
}

impl RunSummary {
    /// Serializes the summary as a single-line JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("RunSummary serializes")
    }

    /// Serializes the summary as pretty-printed JSON directly into
    /// `writer`, streaming instead of buffering the whole document (the
    /// `--summary` path of `malvert run`).
    pub fn to_writer<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        serde_json::to_writer_pretty(&mut writer, self).map_err(std::io::Error::other)?;
        writer.write_all(b"\n")
    }

    /// A copy with the wall-clock-derived parts reduced to their
    /// deterministic residue: timings cleared, latency entries reduced
    /// to merged-across-workers span *counts* (which worker ran a span and
    /// how long it took are scheduling accidents; that the span ran, and how
    /// many of its kind ran, are seed-determined), and the filter-memo
    /// hit/miss/candidate counters zeroed (the per-worker memo makes them
    /// depend on visit-to-worker scheduling; the lookup *total* is
    /// seed-determined and survives). Everything that remains is
    /// deterministic in the study seed, so two runs of the same study must
    /// agree byte-for-byte regardless of worker count.
    pub fn without_timings(&self) -> RunSummary {
        let mut counters = self.counters;
        counters.filter_cache_hits = 0;
        counters.filter_cache_misses = 0;
        counters.filter_candidates_evaluated = 0;
        counters.script_cache_hits = 0;
        counters.script_cache_misses = 0;
        counters.bytecode_dispatches = 0;
        counters.inline_cache_hits = 0;
        counters.inline_cache_misses = 0;
        counters.shape_hits = 0;
        counters.shape_transitions = 0;
        RunSummary {
            timings: Vec::new(),
            latencies: self
                .latencies
                .iter()
                .filter(|l| l.worker.is_none())
                .map(|l| l.counts_only())
                .collect(),
            counters,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_timings() {
        let mut m = RunMetrics::new(RunCounters::default());
        for (i, stage) in StageId::ALL.into_iter().enumerate() {
            m.record(stage, Duration::from_micros(10 * (i as u64 + 1)));
        }
        assert_eq!(m.timings().len(), 4);
        assert_eq!(m.stage_wall_us(StageId::Crawl), Some(20));
        assert_eq!(m.stage_wall_us(StageId::Aggregate), Some(40));
        assert_eq!(m.total_wall_us(), 10 + 20 + 30 + 40);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut categories = std::collections::BTreeMap::new();
        categories.insert("blacklists".to_string(), 3);
        let summary = RunSummary {
            unique_ads: 100,
            observations: 500,
            page_loads: 60,
            detected: 4,
            categories,
            ground_truth: GroundTruth {
                tp: 3,
                fp: 1,
                fn_: 2,
            },
            iframes: IframeCensus {
                total: 200,
                sandboxed: 10,
            },
            hijacks: HijackTally {
                exposed: 2,
                blocked: 1,
            },
            counters: RunCounters {
                page_loads: 60,
                ads_observed: 500,
                unique_ads: 100,
                oracle_executions: 100,
                script_budgets_exhausted: 0,
                feed_lookups: 350,
                filter_lookups: 240,
                filter_cache_hits: 180,
                filter_cache_misses: 60,
                filter_candidates_evaluated: 95,
                script_lookups: 300,
                script_cache_hits: 280,
                script_cache_misses: 20,
                bytecode_dispatches: 9000,
                inline_cache_hits: 400,
                inline_cache_misses: 40,
                shape_hits: 320,
                shape_transitions: 25,
                errors: ErrorCounters::default(),
                ..RunCounters::default()
            },
            timings: vec![StageTiming {
                stage: StageId::Crawl,
                wall_us: 1234,
            }],
            latencies: Vec::new(),
        };
        let json = summary.to_json();
        let back: RunSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
        // The legacy key spelling survives the typed schema.
        assert!(json.contains("\"fn\":2"));
        assert!(json.contains("\"stage\":\"crawl\""));
    }

    #[test]
    fn without_timings_strips_only_timings() {
        let mut m = RunMetrics::new(RunCounters::default());
        m.record(StageId::Crawl, Duration::from_micros(5));
        let summary = RunSummary {
            unique_ads: 7,
            timings: m.timings().to_vec(),
            ..RunSummary::default()
        };
        let stripped = summary.without_timings();
        assert!(stripped.timings.is_empty());
        assert_eq!(stripped.unique_ads, 7);
    }

    #[test]
    fn without_timings_zeroes_scheduling_dependent_filter_counters() {
        let summary = RunSummary {
            counters: RunCounters {
                filter_lookups: 100,
                filter_cache_hits: 70,
                filter_cache_misses: 30,
                filter_candidates_evaluated: 45,
                script_lookups: 80,
                script_cache_hits: 75,
                script_cache_misses: 5,
                bytecode_dispatches: 5000,
                inline_cache_hits: 120,
                inline_cache_misses: 12,
                shape_hits: 96,
                shape_transitions: 9,
                ..RunCounters::default()
            },
            ..RunSummary::default()
        };
        let stripped = summary.without_timings();
        // The lookup totals are seed-determined and survive; the cache
        // splits (and the misses' candidate cost) do not.
        assert_eq!(stripped.counters.filter_lookups, 100);
        assert_eq!(stripped.counters.filter_cache_hits, 0);
        assert_eq!(stripped.counters.filter_cache_misses, 0);
        assert_eq!(stripped.counters.filter_candidates_evaluated, 0);
        assert_eq!(stripped.counters.script_lookups, 80);
        assert_eq!(stripped.counters.script_cache_hits, 0);
        assert_eq!(stripped.counters.script_cache_misses, 0);
        // VM execution counters are engine-dependent diagnostics, so they
        // are stripped too — the tree-walk oracle would report zeros.
        assert_eq!(stripped.counters.bytecode_dispatches, 0);
        assert_eq!(stripped.counters.inline_cache_hits, 0);
        assert_eq!(stripped.counters.inline_cache_misses, 0);
        assert_eq!(stripped.counters.shape_hits, 0);
        assert_eq!(stripped.counters.shape_transitions, 0);
    }

    #[test]
    fn counters_deserialize_from_legacy_summaries() {
        // Summaries written before the filter engine lack the new keys;
        // they must still load, defaulting the counters to zero.
        let legacy = r#"{"page_loads":6,"ads_observed":5,"unique_ads":4,
            "oracle_executions":4,"script_budgets_exhausted":0,"feed_lookups":9}"#;
        let back: RunCounters = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.page_loads, 6);
        assert_eq!(back.filter_lookups, 0);
        assert_eq!(back.filter_cache_hits, 0);
        assert_eq!(back.script_lookups, 0);
        assert_eq!(back.script_cache_hits, 0);
        assert_eq!(back.bytecode_dispatches, 0);
        assert_eq!(back.inline_cache_hits, 0);
        assert!(back.errors.is_clean());
    }

    #[test]
    fn error_counters_survive_without_timings() {
        let mut errors = ErrorCounters::default();
        errors.record(malvert_types::CrawlErrorClass::Timeout);
        errors.record(malvert_types::CrawlErrorClass::TruncatedBody);
        errors.retries = 3;
        errors.degraded_visits = 2;
        let summary = RunSummary {
            counters: RunCounters {
                errors,
                ..RunCounters::default()
            },
            ..RunSummary::default()
        };
        // Error accounting is deterministic in (seed, profile) — it must not
        // be stripped with the scheduling-dependent counters.
        assert_eq!(summary.without_timings().counters.errors, errors);
    }

    #[test]
    fn without_timings_reduces_latencies_to_counts() {
        use malvert_trace::{LogHistogram, SpanKind};
        let mut hist = LogHistogram::new();
        hist.record_us(100);
        hist.record_us(5_000);
        let summary = RunSummary {
            latencies: vec![
                SpanLatency::from_hist(SpanKind::ClassifyAd, None, hist.clone()),
                SpanLatency::from_hist(SpanKind::ClassifyAd, Some(3), hist),
            ],
            ..RunSummary::default()
        };
        let stripped = summary.without_timings();
        // Per-worker entries (scheduling-dependent) are dropped; the merged
        // entry keeps its sample count but loses its buckets/percentiles.
        assert_eq!(stripped.latencies.len(), 1);
        assert!(stripped.latencies[0].worker.is_none());
        assert_eq!(stripped.latencies[0].hist.count(), 2);
        assert_eq!(stripped.latencies[0].p95_us, 0);
    }

    #[test]
    fn to_writer_streams_pretty_json() {
        let summary = RunSummary {
            unique_ads: 7,
            ..RunSummary::default()
        };
        let mut buf = Vec::new();
        summary.to_writer(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.ends_with('\n'));
        let back: RunSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, summary);
    }
}
