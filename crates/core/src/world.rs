//! Study-world assembly: wiring every subsystem into one simulated Internet.

use malvert_adnet::{AdWorld, AdWorldConfig};
use malvert_blacklist::{BlacklistService, DomainTruth, ThreatKind};
use malvert_filterlist::FilterSet;
use malvert_net::Network;
use malvert_scanner::ScanService;
use malvert_types::rng::SeedTree;
use malvert_types::{AdNetworkId, DomainName};
use malvert_websim::page::{widget_domain, PublisherServer, WidgetServer};
use malvert_websim::{WebConfig, WorldWeb};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the study needs, fully wired: the ranked Web, the ad economy,
/// the simulated network routing both, the filter list, and the oracle's
/// component services.
pub struct StudyWorld {
    /// Root seed tree.
    pub tree: SeedTree,
    /// The ranked Web.
    pub web: WorldWeb,
    /// The ad economy.
    pub ads: AdWorld,
    /// The simulated Internet.
    pub network: Network,
    /// The generated EasyList-style filter set.
    pub filter: FilterSet,
    /// The 49-feed blacklist aggregate with ground truth registered.
    pub blacklists: BlacklistService,
    /// The 51-engine scanner.
    pub scanner: ScanService,
    /// Serve-domain → ad network lookup.
    domain_to_network: HashMap<DomainName, AdNetworkId>,
}

impl StudyWorld {
    /// Builds the whole world from a seed and configs. `window_days` is the
    /// crawl window length; blacklist-feed lags scale with it.
    pub fn build(
        seed: u64,
        web_config: &WebConfig,
        ad_config: &AdWorldConfig,
        easylist_coverage: f64,
        window_days: u32,
    ) -> StudyWorld {
        let tree = SeedTree::new(seed);
        let ads = AdWorld::generate(tree, ad_config);
        let web = WorldWeb::generate(tree, web_config);

        let mut network = Network::new(tree);
        ads.register_servers(&mut network);
        let network_domains = Arc::new(ads.network_domains());
        for site in &web.sites {
            network.register(
                site.domain.clone(),
                Arc::new(PublisherServer::new(
                    site.clone(),
                    Arc::clone(&network_domains),
                )),
            );
        }
        network.register(widget_domain(), Arc::new(WidgetServer));

        let filter = crate::easylist::build_filter(&ads, easylist_coverage);

        let mut blacklists = BlacklistService::for_window(tree.branch("blacklists"), window_days);
        for campaign in ads.campaigns() {
            if !campaign.is_malicious() {
                continue;
            }
            let kind = match &campaign.behavior {
                malvert_adnet::CampaignBehavior::Hijack { .. } => ThreatKind::Scam,
                _ => ThreatKind::MalwareDistribution,
            };
            for d in campaign.controlled_domains() {
                blacklists.register(
                    d.clone(),
                    DomainTruth::MaliciousKind {
                        active_from: campaign.active_from,
                        kind,
                    },
                );
            }
        }
        // Benign advertiser/publisher domains are registered too, so the
        // feeds can produce realistic false positives on them.
        for campaign in ads.campaigns() {
            if !campaign.is_malicious() {
                for d in campaign.controlled_domains() {
                    blacklists.register(d.clone(), DomainTruth::Benign);
                }
            }
        }
        for site in &web.sites {
            blacklists.register(site.domain.clone(), DomainTruth::Benign);
        }

        let scanner = ScanService::new(tree.branch("scanner"));

        let domain_to_network = ads
            .networks()
            .iter()
            .map(|n| (n.domain.clone(), n.id))
            .collect();

        StudyWorld {
            tree,
            web,
            ads,
            network,
            filter,
            blacklists,
            scanner,
            domain_to_network,
        }
    }

    /// Maps a host to the ad network that owns it, if any.
    pub fn network_of(&self, host: &DomainName) -> Option<AdNetworkId> {
        self.domain_to_network.get(host).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_web() -> WebConfig {
        WebConfig {
            ranking_universe: 10_000,
            top_slice: 30,
            bottom_slice: 30,
            random_slice: 30,
            security_feed: 10,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        }
    }

    #[test]
    fn world_builds_and_routes() {
        let w = StudyWorld::build(5, &small_web(), &AdWorldConfig::default(), 1.0, 90);
        assert_eq!(w.web.sites.len(), 100);
        // Every publisher resolves.
        for site in &w.web.sites {
            assert!(w.network.resolves(&site.domain));
        }
        // Every ad network resolves and maps back.
        for n in w.ads.networks() {
            assert!(w.network.resolves(&n.domain));
            assert_eq!(w.network_of(&n.domain), Some(n.id));
        }
        assert_eq!(w.network_of(&widget_domain()), None);
    }

    #[test]
    fn blacklist_truth_registered() {
        let w = StudyWorld::build(5, &small_web(), &AdWorldConfig::default(), 1.0, 90);
        // By the end of the window, at least one malicious domain is flagged.
        let flagged = w
            .ads
            .malicious_ground_truth()
            .iter()
            .flat_map(|(_, ds, _)| ds.clone())
            .filter(|d| w.blacklists.is_flagged(d, 89))
            .count();
        assert!(flagged > 0);
    }

    #[test]
    fn build_is_deterministic() {
        let a = StudyWorld::build(9, &small_web(), &AdWorldConfig::default(), 1.0, 90);
        let b = StudyWorld::build(9, &small_web(), &AdWorldConfig::default(), 1.0, 90);
        for (x, y) in a.web.sites.iter().zip(&b.web.sites) {
            assert_eq!(x.domain, y.domain);
        }
        for (x, y) in a.ads.networks().iter().zip(b.ads.networks()) {
            assert_eq!(x.domain, y.domain);
        }
    }
}
