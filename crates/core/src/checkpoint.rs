//! Seed-deterministic study checkpoints.
//!
//! A checkpointed run persists one JSON document — `state.json` — into its
//! checkpoint directory at engine shard boundaries, via the atomic
//! [`SnapshotStore`]. The snapshot is the *exact* fold of the completed
//! job prefix (the engine parks every worker before the boundary callback
//! runs), so a killed run resumed from it is byte-identical to an
//! uninterrupted one: remaining jobs are pure functions of the seed, and
//! all cross-job state is in the snapshot.
//!
//! Counter semantics: the snapshot stores *totals at the boundary*. A
//! resumed run starts fresh live counters at zero and reports
//! `base + live`, which reproduces the deterministic totals (lookups,
//! oracle visits, feed lookups) exactly. Cache hit/miss *splits* are
//! scheduling accidents and may differ after a resume — exactly as they
//! already do across worker counts — and the run summary's
//! timing-stripped form zeroes them for comparisons.

use crate::study::{ClassifiedAd, CrawlSummary, StudyConfig};
use malvert_crawler::{AdCorpus, CrawlAggregate, FilterCounts, ScriptCounts, UniqueAd};
use malvert_engine::SnapshotStore;
use malvert_types::rng::mix_label;
use malvert_types::{ErrorCounters, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::time::Duration;

/// Snapshot format version; bumped on any incompatible layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The snapshot document name inside a checkpoint directory.
const STATE_DOC: &str = "state.json";

/// Domain-separation constant for [`config_fingerprint`] (ASCII
/// `malvtckp`).
const FINGERPRINT_DOMAIN: u64 = 0x6d61_6c76_7463_6b70;

/// A structural fingerprint of a study configuration, mixed from its
/// complete debug rendering (which covers every field without requiring
/// the whole config graph to be serializable). Two configs with the same
/// fingerprint produce the same job sequence, so a snapshot is only
/// resumable under the fingerprint it was written with.
pub fn config_fingerprint(config: &StudyConfig) -> u64 {
    mix_label(FINGERPRINT_DOMAIN, format!("{config:?}").as_bytes())
}

/// Which pipeline stage a snapshot parked in. A `Crawl` snapshot whose
/// `next_job` equals the crawl's total job count *is* the completed-crawl
/// state; `Classify` snapshots embed that completed crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Parked between crawl shards; `next_job` counts page visits.
    Crawl,
    /// Crawl complete; `next_job` counts classified unique ads.
    Classify,
}

/// Filter-engine counter totals at the snapshot boundary.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FilterBase {
    /// Filter queries answered.
    pub lookups: u64,
    /// Memo hits (scheduling-dependent; zeroed in stripped summaries).
    pub cache_hits: u64,
    /// Memo misses (scheduling-dependent; zeroed in stripped summaries).
    pub cache_misses: u64,
    /// Candidate rules evaluated (scheduling-dependent).
    pub candidates_evaluated: u64,
}

impl FilterBase {
    /// Captures counter totals.
    pub fn capture(counts: FilterCounts) -> FilterBase {
        FilterBase {
            lookups: counts.lookups,
            cache_hits: counts.cache_hits,
            cache_misses: counts.cache_misses,
            candidates_evaluated: counts.candidates_evaluated,
        }
    }

    /// These base totals plus a live snapshot taken after a resume.
    pub fn plus(self, live: FilterCounts) -> FilterCounts {
        FilterCounts {
            lookups: self.lookups + live.lookups,
            cache_hits: self.cache_hits + live.cache_hits,
            cache_misses: self.cache_misses + live.cache_misses,
            candidates_evaluated: self.candidates_evaluated + live.candidates_evaluated,
        }
    }
}

/// Script-compilation cache counter totals at the snapshot boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptBase {
    /// Compile requests answered.
    pub lookups: u64,
    /// Cache hits (scheduling-dependent; zeroed in stripped summaries).
    pub cache_hits: u64,
    /// Cache misses (scheduling-dependent; zeroed in stripped summaries).
    pub cache_misses: u64,
    /// VM bytecode dispatches (engine-dependent; zeroed in stripped
    /// summaries). Defaults to zero when loading pre-VM snapshots.
    #[serde(default)]
    pub bytecode_dispatches: u64,
    /// VM inline-cache hits (engine-dependent; zeroed in stripped
    /// summaries). Defaults to zero when loading pre-VM snapshots.
    #[serde(default)]
    pub inline_cache_hits: u64,
    /// VM inline-cache misses (engine-dependent; zeroed in stripped
    /// summaries). Defaults to zero when loading pre-VM snapshots.
    #[serde(default)]
    pub inline_cache_misses: u64,
    /// VM shape-certified IC hits (engine-dependent; zeroed in stripped
    /// summaries). Defaults to zero when loading pre-shape snapshots.
    #[serde(default)]
    pub shape_hits: u64,
    /// VM hidden-class shape transitions performed (engine-dependent;
    /// zeroed in stripped summaries). Defaults to zero when loading
    /// pre-shape snapshots.
    #[serde(default)]
    pub shape_transitions: u64,
}

impl ScriptBase {
    /// Captures counter totals.
    pub fn capture(counts: ScriptCounts) -> ScriptBase {
        ScriptBase {
            lookups: counts.lookups,
            cache_hits: counts.cache_hits,
            cache_misses: counts.cache_misses,
            bytecode_dispatches: counts.bytecode_dispatches,
            inline_cache_hits: counts.inline_cache_hits,
            inline_cache_misses: counts.inline_cache_misses,
            shape_hits: counts.shape_hits,
            shape_transitions: counts.shape_transitions,
        }
    }

    /// These base totals plus a live snapshot taken after a resume.
    pub fn plus(self, live: ScriptCounts) -> ScriptCounts {
        ScriptCounts {
            lookups: self.lookups + live.lookups,
            cache_hits: self.cache_hits + live.cache_hits,
            cache_misses: self.cache_misses + live.cache_misses,
            bytecode_dispatches: self.bytecode_dispatches + live.bytecode_dispatches,
            inline_cache_hits: self.inline_cache_hits + live.inline_cache_hits,
            inline_cache_misses: self.inline_cache_misses + live.inline_cache_misses,
            shape_hits: self.shape_hits + live.shape_hits,
            shape_transitions: self.shape_transitions + live.shape_transitions,
        }
    }
}

/// The crawl stage's complete fold at a shard boundary: corpus, census
/// counters, and instrumentation totals. Integer-keyed maps are encoded
/// as sorted pair vectors so the JSON round-trips without map-key
/// gymnastics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrawlState {
    /// Unique ads, sorted by creative.
    pub ads: Vec<UniqueAd>,
    /// Total (non-unique) observations recorded.
    pub total_observations: u64,
    /// Chain-length tallies: `(creative_key, [(chain_len, count)])`.
    pub chain_lengths: Vec<(u64, Vec<(usize, u64)>)>,
    /// Per-site ad observations: `(site index, count)`.
    pub site_ad_observations: Vec<(u32, u64)>,
    /// `(total iframes, sandboxed iframes)`.
    pub iframe_census: (u64, u64),
    /// `(hijack exposures, hijacks blocked)`.
    pub hijack_counts: (u64, u64),
    /// Pages loaded.
    pub page_loads: u64,
    /// Crawl-error taxonomy totals.
    pub errors: ErrorCounters,
    /// Filter-engine totals at the boundary.
    pub filter: FilterBase,
    /// Crawl-stage script-cache totals at the boundary.
    pub script: ScriptBase,
}

/// Encodes the aggregate's maps as sorted pair vectors.
fn encode_chains(chains: &HashMap<u64, BTreeMap<usize, u64>>) -> Vec<(u64, Vec<(usize, u64)>)> {
    let mut out: Vec<(u64, Vec<(usize, u64)>)> = chains
        .iter()
        .map(|(key, tally)| (*key, tally.iter().map(|(len, n)| (*len, *n)).collect()))
        .collect();
    out.sort_unstable_by_key(|(key, _)| *key);
    out
}

fn encode_sites(sites: &HashMap<SiteId, u64>) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = sites.iter().map(|(site, n)| (site.0, *n)).collect();
    out.sort_unstable();
    out
}

impl CrawlState {
    /// Captures the state of an in-progress crawl: the aggregate fold plus
    /// the instrumentation totals (`base + live`, computed by the caller).
    pub fn from_aggregate(
        aggregate: &CrawlAggregate,
        filter: FilterCounts,
        script: ScriptCounts,
    ) -> CrawlState {
        CrawlState {
            ads: aggregate.corpus.ads_sorted().into_iter().cloned().collect(),
            total_observations: aggregate.corpus.total_observations(),
            chain_lengths: encode_chains(&aggregate.chain_lengths),
            site_ad_observations: encode_sites(&aggregate.site_ad_observations),
            iframe_census: aggregate.iframe_census,
            hijack_counts: aggregate.hijack_counts,
            page_loads: aggregate.page_loads,
            errors: aggregate.errors,
            filter: FilterBase::capture(filter),
            script: ScriptBase::capture(script),
        }
    }

    /// Captures a completed crawl from its summary (classify-phase
    /// snapshots embed this).
    pub fn from_summary(summary: &CrawlSummary) -> CrawlState {
        CrawlState {
            ads: summary.corpus.ads_sorted().into_iter().cloned().collect(),
            total_observations: summary.corpus.total_observations(),
            chain_lengths: encode_chains(&summary.chain_lengths),
            site_ad_observations: encode_sites(&summary.site_ad_observations),
            iframe_census: summary.iframe_census,
            hijack_counts: summary.hijack_counts,
            page_loads: summary.page_loads,
            errors: summary.errors,
            filter: FilterBase::capture(summary.filter),
            script: ScriptBase::capture(summary.script),
        }
    }

    /// Rebuilds the in-progress aggregate plus the counter bases a resumed
    /// crawl adds its fresh live counters onto.
    pub fn into_parts(self) -> (CrawlAggregate, FilterBase, ScriptBase) {
        let aggregate = CrawlAggregate {
            corpus: AdCorpus::from_parts(self.ads, self.total_observations),
            chain_lengths: self
                .chain_lengths
                .into_iter()
                .map(|(key, tally)| (key, tally.into_iter().collect()))
                .collect(),
            site_ad_observations: self
                .site_ad_observations
                .into_iter()
                .map(|(site, n)| (SiteId(site), n))
                .collect(),
            iframe_census: self.iframe_census,
            hijack_counts: self.hijack_counts,
            page_loads: self.page_loads,
            errors: self.errors,
        };
        (aggregate, self.filter, self.script)
    }

    /// Rebuilds the completed crawl summary a classify-phase resume starts
    /// from. The crawl wall-clock was not preserved (it belongs to the
    /// killed process) and is reported as zero; stripped summaries drop
    /// timings anyway.
    pub fn into_summary(self) -> CrawlSummary {
        let filter = self.filter.plus(FilterCounts::default());
        let script = self.script.plus(ScriptCounts::default());
        let (aggregate, _, _) = self.into_parts();
        CrawlSummary {
            corpus: aggregate.corpus,
            chain_lengths: aggregate.chain_lengths,
            site_ad_observations: aggregate.site_ad_observations,
            iframe_census: aggregate.iframe_census,
            hijack_counts: aggregate.hijack_counts,
            page_loads: aggregate.page_loads,
            filter,
            script,
            errors: aggregate.errors,
            wall: Duration::ZERO,
        }
    }
}

/// One parked study run: the identity of the run (seed + config
/// fingerprint), where it parked, and the exact fold of everything
/// completed so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudySnapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The study seed the snapshot belongs to.
    pub seed: u64,
    /// [`config_fingerprint`] of the study configuration.
    pub fingerprint: u64,
    /// The stage the run parked in.
    pub phase: Phase,
    /// First unprocessed job of that stage (page visits for
    /// [`Phase::Crawl`], unique-ad indices for [`Phase::Classify`]).
    pub next_job: usize,
    /// The crawl fold: in-progress for [`Phase::Crawl`], complete for
    /// [`Phase::Classify`].
    pub crawl: CrawlState,
    /// Honeyclient visits performed before the boundary.
    pub oracle_visits: u64,
    /// Blacklist feed lookups performed before the boundary.
    pub oracle_feed_lookups: u64,
    /// Script-budget exhaustions observed before the boundary.
    pub oracle_budget_exhaustions: u64,
    /// Classify-stage script-cache totals at the boundary.
    pub classify_script: ScriptBase,
    /// Classified ads `[0, next_job)`, in `ads_sorted` order.
    pub classified: Vec<ClassifiedAd>,
}

impl StudySnapshot {
    /// Writes this snapshot as the store's `state.json`, atomically
    /// replacing any previous one. Returns the serialized byte count.
    pub fn save(&self, store: &SnapshotStore) -> io::Result<u64> {
        store.save(STATE_DOC, self)
    }

    /// Loads a store's `state.json`; `Ok(None)` when none was written yet.
    pub fn load(store: &SnapshotStore) -> io::Result<Option<StudySnapshot>> {
        store.load(STATE_DOC)
    }

    /// Checks the snapshot belongs to `(seed, fingerprint)` and is of a
    /// layout this build understands.
    pub fn validate(&self, seed: u64, fingerprint: u64) -> Result<(), String> {
        if self.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {} (this build writes {SNAPSHOT_VERSION})",
                self.version
            ));
        }
        if self.seed != seed {
            return Err(format!(
                "snapshot seed {} != configured seed {seed}",
                self.seed
            ));
        }
        if self.fingerprint != fingerprint {
            return Err(format!(
                "snapshot fingerprint {:016x} != configured fingerprint {fingerprint:016x}",
                self.fingerprint
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_configs() {
        let a = StudyConfig::tiny(11);
        let mut b = StudyConfig::tiny(11);
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        b.crawl.workers = a.crawl.workers + 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn crawl_state_round_trips_through_parts() {
        let mut aggregate = CrawlAggregate::new();
        aggregate.iframe_census = (10, 2);
        aggregate.hijack_counts = (3, 1);
        aggregate.page_loads = 7;
        aggregate
            .chain_lengths
            .insert(42, [(2usize, 5u64)].into_iter().collect());
        aggregate.site_ad_observations.insert(SiteId(9), 4);
        let filter = FilterCounts {
            lookups: 100,
            cache_hits: 60,
            cache_misses: 40,
            candidates_evaluated: 500,
        };
        let script = ScriptCounts {
            lookups: 20,
            cache_hits: 15,
            cache_misses: 5,
            bytecode_dispatches: 700,
            inline_cache_hits: 80,
            inline_cache_misses: 8,
            shape_hits: 64,
            shape_transitions: 12,
        };
        let state = CrawlState::from_aggregate(&aggregate, filter, script);
        let json = serde_json::to_string(&state).expect("serializes");
        let back: CrawlState = serde_json::from_str(&json).expect("deserializes");
        let (rebuilt, filter_base, script_base) = back.into_parts();
        assert_eq!(rebuilt.iframe_census, (10, 2));
        assert_eq!(rebuilt.hijack_counts, (3, 1));
        assert_eq!(rebuilt.page_loads, 7);
        assert_eq!(
            rebuilt.chain_lengths.get(&42).and_then(|t| t.get(&2)),
            Some(&5)
        );
        assert_eq!(rebuilt.site_ad_observations.get(&SiteId(9)), Some(&4));
        assert_eq!(filter_base.plus(FilterCounts::default()).lookups, 100);
        assert_eq!(script_base.plus(ScriptCounts::default()).cache_hits, 15);
        assert_eq!(
            script_base
                .plus(ScriptCounts::default())
                .bytecode_dispatches,
            700
        );
        assert_eq!(
            script_base.plus(ScriptCounts::default()).inline_cache_hits,
            80
        );
        assert_eq!(script_base.plus(ScriptCounts::default()).shape_hits, 64);
        assert_eq!(
            script_base.plus(ScriptCounts::default()).shape_transitions,
            12
        );
    }
}
