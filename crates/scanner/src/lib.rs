//! # malvert-scanner
//!
//! The multi-engine payload scanner — the study's VirusTotal analogue.
//!
//! §3.2.3 of the paper: whenever an advertisement forced a download, the
//! file was submitted to VirusTotal, which scans with **51** antivirus
//! engines, and the verdict consensus decides whether the download is
//! malware (Table 1's "Malicious executables" and "Malicious Flash" rows).
//!
//! VirusTotal and the AV engines are external services; per the substitution
//! rule we build the closest synthetic equivalent that exercises the same
//! code path:
//!
//! * [`payload`] — synthesizes download bytes. Executables get a DOS/PE
//!   shape (`MZ` magic, header fields, sections); Flash files get an
//!   `FWS`/`CWS` shape. Malicious payloads carry a *family marker* (a byte
//!   pattern derived from the malware family id, at a packer-dependent
//!   offset) plus realistically high-entropy packed sections.
//! * [`engine`] — 51 engines, each with its own signature database (the
//!   subset of families it knows), a heuristic layer (packed-executable
//!   detection with per-engine sensitivity), and a small false-positive
//!   rate. Every verdict is a deterministic function of
//!   `(engine seed, payload bytes)`.
//! * [`report`] — the scan service and VirusTotal-style report
//!   (`positives / total`, per-engine detection names), with a consensus
//!   threshold for the oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod payload;
pub mod report;

pub use engine::AvEngine;
pub use payload::{MalwareFamily, Payload, PayloadKind};
pub use report::{ScanReport, ScanService};

/// Number of simulated AV engines — VirusTotal used 51 at the time of the
/// study.
pub const ENGINE_COUNT: usize = 51;

/// Consensus threshold: a payload is considered malicious when at least this
/// many engines flag it. (VirusTotal reports raw counts; consumers commonly
/// apply a small threshold to discount one-engine FPs.)
pub const DEFAULT_CONSENSUS: usize = 4;
