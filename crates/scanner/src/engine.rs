//! One simulated antivirus engine.

use crate::payload::{entropy, MalwareFamily, Payload, PayloadKind};
use malvert_types::rng::{mix_label, SeedTree};
use malvert_types::DetRng;

/// A single AV engine: a signature database (the families it knows), a
/// packed-executable heuristic with per-engine sensitivity, and a small
/// hash-collision-style false-positive rate.
#[derive(Debug, Clone)]
pub struct AvEngine {
    /// Engine index (0..50).
    pub id: usize,
    /// Vendor-style display name.
    pub name: String,
    /// Fraction of the family universe this engine has signatures for.
    pub signature_coverage: f64,
    /// Entropy threshold (bits/byte) above which packed payloads raise the
    /// heuristic; `None` disables the heuristic layer for this engine.
    pub heuristic_threshold: Option<f64>,
    /// Probability of flagging a given benign payload.
    pub fp_rate: f64,
    seed: u64,
}

/// An engine's verdict for one payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Clean.
    Clean,
    /// Signature hit, with the engine's name for the family.
    Signature(String),
    /// Heuristic hit (packed/suspicious structure).
    Heuristic(String),
}

impl Verdict {
    /// True for any non-clean verdict.
    pub fn is_detection(&self) -> bool {
        !matches!(self, Verdict::Clean)
    }
}

impl AvEngine {
    /// Generates the standard population of [`crate::ENGINE_COUNT`] engines:
    /// a handful of top-tier engines with wide signature coverage and tuned
    /// heuristics, a broad middle, and a tail of weak engines.
    pub fn generate_all(tree: SeedTree) -> Vec<AvEngine> {
        (0..crate::ENGINE_COUNT)
            .map(|id| {
                let branch = tree.branch("engine").branch_idx(id as u64);
                let mut rng = branch.rng();
                let (signature_coverage, heuristic, fp_rate) = if id < 10 {
                    (0.75 + 0.2 * rng.unit_f64(), Some(6.8), 0.001)
                } else if id < 35 {
                    (
                        0.40 + 0.30 * rng.unit_f64(),
                        if rng.chance(0.6) { Some(7.0) } else { None },
                        0.002 + 0.003 * rng.unit_f64(),
                    )
                } else {
                    (
                        0.10 + 0.25 * rng.unit_f64(),
                        if rng.chance(0.3) { Some(7.2) } else { None },
                        0.004 + 0.006 * rng.unit_f64(),
                    )
                };
                AvEngine {
                    id,
                    name: format!("Engine{id:02}AV"),
                    signature_coverage,
                    heuristic_threshold: heuristic,
                    fp_rate,
                    seed: branch.seed(),
                }
            })
            .collect()
    }

    /// Does this engine have a signature for `family`? Deterministic per
    /// (engine, family).
    ///
    /// The top quarter of the family-id space models *fresh* families —
    /// malware too new for most signature databases; engines know them at a
    /// small fraction of their normal coverage. Unpacked payloads of fresh
    /// families therefore tend to stay below the consensus threshold — the
    /// gap the oracle's behaviour models exist to close.
    pub fn knows_family(&self, family: MalwareFamily) -> bool {
        let mut rng = DetRng::new(mix_label(self.seed, &family.0.to_le_bytes()));
        let fresh = family.0 >= crate::report::FAMILY_UNIVERSE * 3 / 4;
        let coverage = if fresh {
            self.signature_coverage * 0.12
        } else {
            self.signature_coverage
        };
        rng.chance(coverage)
    }

    /// Scans payload bytes. Engines only see bytes — ground truth is never
    /// consulted; detection works by actually finding the family marker.
    pub fn scan(&self, bytes: &[u8]) -> Verdict {
        let kind = match Payload::sniff_kind(bytes) {
            Some(k) => k,
            None => return Verdict::Clean, // not a scannable container
        };
        // Signature layer: search for the marker of any family this engine
        // knows. Real engines match byte patterns; we search candidate
        // markers over the family id space actually used by the simulation.
        for family_id in 0..crate::report::FAMILY_UNIVERSE {
            let family = MalwareFamily(family_id);
            if !self.knows_family(family) {
                continue;
            }
            let marker = family.marker();
            if bytes.windows(8).any(|w| w == marker) {
                return Verdict::Signature(self.family_name(family, kind));
            }
        }
        // Heuristic layer: packed high-entropy body.
        if let Some(threshold) = self.heuristic_threshold {
            if entropy(bytes) >= threshold {
                let label = match kind {
                    PayloadKind::Executable => "Heur.Packed.Generic",
                    PayloadKind::Flash => "Heur.SWF.Obfuscated",
                };
                return Verdict::Heuristic(label.to_string());
            }
        }
        // False-positive layer: deterministic per (engine, payload hash).
        let mut h = self.seed;
        for chunk in bytes.chunks(64) {
            h = mix_label(h, chunk);
        }
        let mut rng = DetRng::new(h);
        if rng.chance(self.fp_rate) {
            return Verdict::Heuristic("Gen.Suspicious.FP".to_string());
        }
        Verdict::Clean
    }

    /// The engine's vendor-specific name for a family — different engines
    /// name the same family differently, like real AV products.
    pub fn family_name(&self, family: MalwareFamily, kind: PayloadKind) -> String {
        let stem = match kind {
            PayloadKind::Executable => "Win32",
            PayloadKind::Flash => "SWF",
        };
        let styles = ["Trojan", "Mal", "W32", "Gen"];
        let style = styles[(self.id + family.0 as usize) % styles.len()];
        format!("{style}.{stem}.Family{:03}", family.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn engines() -> Vec<AvEngine> {
        AvEngine::generate_all(SeedTree::new(10))
    }

    #[test]
    fn population_profile() {
        let engines = engines();
        assert_eq!(engines.len(), crate::ENGINE_COUNT);
        let top_avg: f64 = engines[..10].iter().map(|e| e.signature_coverage).sum::<f64>() / 10.0;
        let tail_avg: f64 =
            engines[35..].iter().map(|e| e.signature_coverage).sum::<f64>() / 16.0;
        assert!(top_avg > tail_avg + 0.3);
    }

    #[test]
    fn signature_detection_requires_known_family() {
        let engines = engines();
        let family = MalwareFamily(2);
        let payload =
            Payload::malicious(PayloadKind::Executable, family, false, SeedTree::new(11));
        for e in &engines {
            let verdict = e.scan(&payload.bytes);
            if e.knows_family(family) {
                assert!(
                    matches!(verdict, Verdict::Signature(_)),
                    "{} knows the family but returned {verdict:?}",
                    e.name
                );
            } else {
                // Without the signature, only a heuristic could fire — and
                // this payload is unpacked (low entropy), so none should.
                assert!(
                    !matches!(verdict, Verdict::Signature(_)),
                    "{} cannot have a signature hit",
                    e.name
                );
            }
        }
    }

    #[test]
    fn packed_payload_triggers_heuristics() {
        let engines = engines();
        // A packed payload of a family nobody knows (outside the universe is
        // not possible — use a family and count only non-signature engines).
        let payload = Payload::malicious(
            PayloadKind::Executable,
            MalwareFamily(0),
            true,
            SeedTree::new(12),
        );
        let heuristic_hits = engines
            .iter()
            .filter(|e| matches!(e.scan(&payload.bytes), Verdict::Heuristic(_)))
            .count();
        assert!(heuristic_hits > 0, "some engine must flag packed payloads");
    }

    #[test]
    fn benign_payload_mostly_clean() {
        let engines = engines();
        let mut total_fps = 0;
        for i in 0..20 {
            let payload = Payload::benign(PayloadKind::Executable, SeedTree::new(100 + i));
            total_fps += engines
                .iter()
                .filter(|e| e.scan(&payload.bytes).is_detection())
                .count();
        }
        // 20 payloads × 51 engines = 1020 verdicts; FP rates are sub-percent.
        assert!(total_fps < 40, "too many FPs: {total_fps}");
    }

    #[test]
    fn garbage_is_clean() {
        let engines = engines();
        assert_eq!(engines[0].scan(b"plain text file"), Verdict::Clean);
    }

    #[test]
    fn verdicts_deterministic() {
        let engines = engines();
        let payload = Payload::malicious(
            PayloadKind::Flash,
            MalwareFamily(5),
            true,
            SeedTree::new(13),
        );
        for e in &engines {
            assert_eq!(e.scan(&payload.bytes), e.scan(&payload.bytes));
        }
    }

    #[test]
    fn vendor_names_vary_across_engines() {
        let engines = engines();
        let names: std::collections::BTreeSet<String> = engines
            .iter()
            .map(|e| e.family_name(MalwareFamily(1), PayloadKind::Executable))
            .collect();
        assert!(names.len() > 1, "engines should use different naming styles");
    }
}
