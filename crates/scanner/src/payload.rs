//! Synthetic download payloads.

use bytes::Bytes;
use malvert_types::rng::{mix_label, SeedTree};
use malvert_types::DetRng;

/// Kind of downloadable payload the simulation produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// A Windows executable (DOS/PE shape).
    Executable,
    /// A Flash movie (SWF shape).
    Flash,
}

/// A malware family. The family id determines the signature byte pattern
/// engines look for; distinct families have distinct patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MalwareFamily(pub u32);

impl MalwareFamily {
    /// The 8-byte marker this family embeds in its payloads.
    pub fn marker(self) -> [u8; 8] {
        let mut state = mix_label(0x5EED_F00D, &self.0.to_le_bytes());
        let a = malvert_types::rng::splitmix64(&mut state);
        a.to_le_bytes()
    }
}

/// A synthesized payload: bytes plus ground truth (used only by tests and
/// the evaluation — engines see bytes alone).
#[derive(Debug, Clone)]
pub struct Payload {
    /// The raw bytes an engine scans.
    pub bytes: Bytes,
    /// Payload kind.
    pub kind: PayloadKind,
    /// Ground truth: the family when malicious, `None` when benign.
    pub family: Option<MalwareFamily>,
}

impl Payload {
    /// Synthesizes a benign payload.
    pub fn benign(kind: PayloadKind, tree: SeedTree) -> Payload {
        let mut rng = tree.rng();
        let bytes = match kind {
            PayloadKind::Executable => synth_pe(&mut rng, None, false),
            PayloadKind::Flash => synth_swf(&mut rng, None, false),
        };
        Payload {
            bytes,
            kind,
            family: None,
        }
    }

    /// Synthesizes a malicious payload of the given family. `packed`
    /// controls whether the body is high-entropy (packer-style), which the
    /// engines' heuristic layer keys on.
    pub fn malicious(
        kind: PayloadKind,
        family: MalwareFamily,
        packed: bool,
        tree: SeedTree,
    ) -> Payload {
        let mut rng = tree.rng();
        let bytes = match kind {
            PayloadKind::Executable => synth_pe(&mut rng, Some(family), packed),
            PayloadKind::Flash => synth_swf(&mut rng, Some(family), packed),
        };
        Payload {
            bytes,
            kind,
            family: Some(family),
        }
    }

    /// Detects the payload kind from magic bytes, as an engine would.
    pub fn sniff_kind(bytes: &[u8]) -> Option<PayloadKind> {
        if bytes.len() >= 2 && &bytes[..2] == b"MZ" {
            Some(PayloadKind::Executable)
        } else if bytes.len() >= 3 && (&bytes[..3] == b"FWS" || &bytes[..3] == b"CWS") {
            Some(PayloadKind::Flash)
        } else {
            None
        }
    }
}

/// Shannon-ish entropy proxy in bits/byte, computed over byte frequencies.
pub fn entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn synth_pe(rng: &mut DetRng, family: Option<MalwareFamily>, packed: bool) -> Bytes {
    let mut out = Vec::with_capacity(2048);
    // DOS header.
    out.extend_from_slice(b"MZ");
    out.extend_from_slice(&[0x90, 0x00, 0x03, 0x00, 0x00, 0x00, 0x04, 0x00]);
    // e_lfanew -> PE header at fixed offset 0x80.
    out.resize(0x3c, 0);
    out.extend_from_slice(&0x80u32.to_le_bytes());
    out.resize(0x80, 0);
    // PE signature + COFF header (machine = x86, 2 sections).
    out.extend_from_slice(b"PE\0\0");
    out.extend_from_slice(&0x014Cu16.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes());
    out.resize(out.len() + 16, 0);
    // Section names.
    let section_names: &[&[u8]] = if packed {
        &[b".upx0\0\0\0", b".upx1\0\0\0"]
    } else {
        &[b".text\0\0\0", b".data\0\0\0"]
    };
    for name in section_names {
        out.extend_from_slice(name);
        out.resize(out.len() + 32, 0);
    }
    // Body.
    let body_len = rng.range_inclusive(600, 1400);
    let marker_at = rng.range_inclusive(64, body_len - 64);
    for i in 0..body_len {
        let b = if packed {
            // High-entropy packed body.
            (rng.below(256)) as u8
        } else {
            // Low-entropy code-ish body: small alphabet.
            [0x00, 0x55, 0x8B, 0xEC, 0xC3, 0x90][rng.below(6)]
        };
        out.push(b);
        if i == marker_at {
            if let Some(f) = family {
                out.extend_from_slice(&f.marker());
            }
        }
    }
    Bytes::from(out)
}

fn synth_swf(rng: &mut DetRng, family: Option<MalwareFamily>, packed: bool) -> Bytes {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(if packed { b"CWS" } else { b"FWS" });
    out.push(10); // version
    // File length placeholder.
    out.extend_from_slice(&[0; 4]);
    let body_len = rng.range_inclusive(400, 900);
    let marker_at = rng.range_inclusive(32, body_len - 32);
    for i in 0..body_len {
        let b = if packed {
            rng.below(256) as u8
        } else {
            [0x00, 0x3F, 0x03, 0x88, 0x96, 0x40][rng.below(6)]
        };
        out.push(b);
        if i == marker_at {
            if let Some(f) = family {
                out.extend_from_slice(&f.marker());
            }
        }
    }
    let total = out.len() as u32;
    out[4..8].copy_from_slice(&total.to_le_bytes());
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_markers_distinct() {
        let a = MalwareFamily(1).marker();
        let b = MalwareFamily(2).marker();
        assert_ne!(a, b);
        assert_eq!(MalwareFamily(1).marker(), a);
    }

    #[test]
    fn pe_shape() {
        let p = Payload::benign(PayloadKind::Executable, SeedTree::new(1));
        assert_eq!(&p.bytes[..2], b"MZ");
        assert_eq!(Payload::sniff_kind(&p.bytes), Some(PayloadKind::Executable));
        assert!(p.bytes.len() > 600);
    }

    #[test]
    fn swf_shape_and_length_field() {
        let p = Payload::benign(PayloadKind::Flash, SeedTree::new(2));
        assert_eq!(&p.bytes[..3], b"FWS");
        let len = u32::from_le_bytes([p.bytes[4], p.bytes[5], p.bytes[6], p.bytes[7]]);
        assert_eq!(len as usize, p.bytes.len());
        assert_eq!(Payload::sniff_kind(&p.bytes), Some(PayloadKind::Flash));
    }

    #[test]
    fn packed_flash_uses_cws() {
        let p = Payload::malicious(
            PayloadKind::Flash,
            MalwareFamily(3),
            true,
            SeedTree::new(3),
        );
        assert_eq!(&p.bytes[..3], b"CWS");
    }

    #[test]
    fn malicious_payload_contains_marker() {
        let family = MalwareFamily(7);
        let p = Payload::malicious(PayloadKind::Executable, family, false, SeedTree::new(4));
        let marker = family.marker();
        assert!(
            p.bytes.windows(8).any(|w| w == marker),
            "marker must be embedded"
        );
        let benign = Payload::benign(PayloadKind::Executable, SeedTree::new(4));
        assert!(!benign.bytes.windows(8).any(|w| w == marker));
    }

    #[test]
    fn packed_bodies_have_higher_entropy() {
        let packed = Payload::malicious(
            PayloadKind::Executable,
            MalwareFamily(1),
            true,
            SeedTree::new(5),
        );
        let plain = Payload::benign(PayloadKind::Executable, SeedTree::new(5));
        assert!(entropy(&packed.bytes) > entropy(&plain.bytes) + 1.0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = Payload::malicious(
            PayloadKind::Executable,
            MalwareFamily(9),
            true,
            SeedTree::new(6),
        );
        let b = Payload::malicious(
            PayloadKind::Executable,
            MalwareFamily(9),
            true,
            SeedTree::new(6),
        );
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn sniff_rejects_garbage() {
        assert_eq!(Payload::sniff_kind(b"not a payload"), None);
        assert_eq!(Payload::sniff_kind(b""), None);
        assert_eq!(Payload::sniff_kind(b"M"), None);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[7; 100]), 0.0);
        let uniform: Vec<u8> = (0..=255).collect();
        assert!((entropy(&uniform) - 8.0).abs() < 1e-9);
    }
}
