//! The scan service and its VirusTotal-style report.

use crate::engine::{AvEngine, Verdict};
use crate::payload::PayloadKind;
use malvert_types::rng::SeedTree;

/// Size of the malware-family id space the simulation draws from. Engines
/// enumerate candidate markers over this universe when matching signatures.
pub const FAMILY_UNIVERSE: u32 = 64;

/// A VirusTotal-style report: per-engine verdicts for one sample.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// `(engine name, detection name)` for every engine that flagged the
    /// sample.
    pub detections: Vec<(String, String)>,
    /// Number of engines consulted.
    pub total_engines: usize,
    /// Detected container kind, when recognizable.
    pub kind: Option<PayloadKind>,
}

impl ScanReport {
    /// Number of engines that flagged the sample (`positives` in VT terms).
    pub fn positives(&self) -> usize {
        self.detections.len()
    }

    /// `positives / total` ratio.
    pub fn detection_ratio(&self) -> f64 {
        if self.total_engines == 0 {
            0.0
        } else {
            self.positives() as f64 / self.total_engines as f64
        }
    }
}

/// The scan service: the full engine population behind one submit API.
#[derive(Debug)]
pub struct ScanService {
    engines: Vec<AvEngine>,
    consensus: usize,
}

impl ScanService {
    /// Builds the service with the standard engine population and the
    /// default consensus threshold.
    pub fn new(tree: SeedTree) -> Self {
        Self::with_consensus(tree, crate::DEFAULT_CONSENSUS)
    }

    /// Builds the service with a custom consensus threshold (ablation).
    pub fn with_consensus(tree: SeedTree, consensus: usize) -> Self {
        ScanService {
            engines: AvEngine::generate_all(tree),
            consensus,
        }
    }

    /// The engine population.
    pub fn engines(&self) -> &[AvEngine] {
        &self.engines
    }

    /// The consensus threshold.
    pub fn consensus(&self) -> usize {
        self.consensus
    }

    /// Scans a sample with every engine.
    pub fn scan(&self, bytes: &[u8]) -> ScanReport {
        let mut detections = Vec::new();
        for engine in &self.engines {
            match engine.scan(bytes) {
                Verdict::Clean => {}
                Verdict::Signature(name) | Verdict::Heuristic(name) => {
                    detections.push((engine.name.clone(), name));
                }
            }
        }
        ScanReport {
            detections,
            total_engines: self.engines.len(),
            kind: crate::payload::Payload::sniff_kind(bytes),
        }
    }

    /// The oracle's decision: malicious iff at least `consensus` engines
    /// flagged the sample.
    pub fn is_malicious(&self, bytes: &[u8]) -> bool {
        self.scan(bytes).positives() >= self.consensus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{MalwareFamily, Payload};

    fn service() -> ScanService {
        ScanService::new(SeedTree::new(20))
    }

    #[test]
    fn known_malware_reaches_consensus() {
        let svc = service();
        for fam in 0..8 {
            let p = Payload::malicious(
                PayloadKind::Executable,
                MalwareFamily(fam),
                true,
                SeedTree::new(30 + u64::from(fam)),
            );
            let report = svc.scan(&p.bytes);
            assert!(
                report.positives() >= crate::DEFAULT_CONSENSUS,
                "family {fam} only got {} positives",
                report.positives()
            );
            assert!(svc.is_malicious(&p.bytes));
        }
    }

    #[test]
    fn benign_samples_pass() {
        let svc = service();
        for i in 0..20 {
            let p = Payload::benign(PayloadKind::Executable, SeedTree::new(300 + i));
            assert!(
                !svc.is_malicious(&p.bytes),
                "benign sample {i} failed consensus check"
            );
        }
        for i in 0..20 {
            let p = Payload::benign(PayloadKind::Flash, SeedTree::new(400 + i));
            assert!(!svc.is_malicious(&p.bytes));
        }
    }

    #[test]
    fn flash_malware_detected() {
        let svc = service();
        let p = Payload::malicious(
            PayloadKind::Flash,
            MalwareFamily(3),
            false,
            SeedTree::new(31),
        );
        let report = svc.scan(&p.bytes);
        assert!(report.positives() >= crate::DEFAULT_CONSENSUS);
        assert_eq!(report.kind, Some(PayloadKind::Flash));
    }

    #[test]
    fn report_totals() {
        let svc = service();
        let p = Payload::benign(PayloadKind::Executable, SeedTree::new(32));
        let report = svc.scan(&p.bytes);
        assert_eq!(report.total_engines, crate::ENGINE_COUNT);
        assert!(report.detection_ratio() < 0.1);
    }

    #[test]
    fn no_engine_sees_everything() {
        let svc = service();
        // For every engine there is at least one family it misses.
        for e in svc.engines() {
            let missed = (0..FAMILY_UNIVERSE).any(|f| !e.knows_family(MalwareFamily(f)));
            assert!(missed, "{} implausibly knows every family", e.name);
        }
    }

    #[test]
    fn consensus_threshold_respected() {
        let strict = ScanService::with_consensus(SeedTree::new(20), 40);
        let p = Payload::malicious(
            PayloadKind::Executable,
            MalwareFamily(1),
            false,
            SeedTree::new(33),
        );
        let report = strict.scan(&p.bytes);
        // Signature coverage averages well below 40/51.
        if report.positives() < 40 {
            assert!(!strict.is_malicious(&p.bytes));
        }
    }

    #[test]
    fn scan_unscannable_bytes() {
        let svc = service();
        let report = svc.scan(b"README contents");
        assert_eq!(report.positives(), 0);
        assert_eq!(report.kind, None);
    }
}
