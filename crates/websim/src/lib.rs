//! # malvert-websim
//!
//! The synthetic World Wide Web the study crawls.
//!
//! The paper's crawl list (§3.1) mixed two feeds: an antivirus company's
//! feed of previously-suspicious pages, and slices of Alexa's top-million
//! ranking — the top and bottom 10,000 sites, top/bottom 1,000 of selected
//! TLDs, and 20,000 random sites. Neither the 2014 Web nor Alexa exists to
//! crawl today, so this crate *generates* a ranked Web with the properties
//! the analysis depends on:
//!
//! * a global popularity ranking (the cluster analysis of §4.2 splits by
//!   rank: top-10k / bottom-10k / rest);
//! * a content-category mix per site (Figure 3), correlated with rank and
//!   with feed membership;
//! * a TLD assignment (Figure 4), `.com`-heavy like the real Web;
//! * per-site advertisement slots, more numerous on popular sites (the
//!   paper measured the top cluster serving 76.6% of all ads);
//! * publisher pages: real HTML with content, non-ad iframes (widgets), and
//!   one ad iframe per slot pointing at an ad network's serve endpoint —
//!   none of them carrying the HTML5 `sandbox` attribute (§4.4), unless the
//!   countermeasure knob is turned on.
//!
//! The generated sites implement [`malvert_net::OriginServer`], so the
//! crawler fetches them over the simulated network exactly as a Selenium
//! crawler fetched real sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod names;
pub mod page;
pub mod site;
pub mod stream;

pub use generate::{WebConfig, WorldWeb};
pub use site::{AdSlot, CrawlCluster, Site};
pub use stream::{Impression, ImpressionStream, StreamConfig};
