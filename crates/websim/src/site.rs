//! Site model.

use malvert_types::{AdNetworkId, DomainName, SiteCategory, SiteId, Url};

/// Which crawl-seed population a site belongs to — the clusters of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrawlCluster {
    /// Alexa top-10k slice.
    Top,
    /// Alexa bottom-10k slice.
    Bottom,
    /// Random mid-ranking sites plus the security-feed population.
    Rest,
}

impl CrawlCluster {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            CrawlCluster::Top => "top-10k",
            CrawlCluster::Bottom => "bottom-10k",
            CrawlCluster::Rest => "rest",
        }
    }
}

/// One advertisement slot on a publisher page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdSlot {
    /// Index of the slot on the page (0-based).
    pub index: usize,
    /// The ad network the publisher contracted for this slot.
    pub network: AdNetworkId,
    /// Creative width in px.
    pub width: u32,
    /// Creative height in px.
    pub height: u32,
}

/// A website in the simulated Web.
#[derive(Debug, Clone)]
pub struct Site {
    /// Site id (dense index into the crawled population).
    pub id: SiteId,
    /// The site's host name.
    pub domain: DomainName,
    /// Global popularity rank (1 = most popular) within the simulated
    /// top-million-style ranking.
    pub rank: u32,
    /// Content category.
    pub category: SiteCategory,
    /// Which crawl population the site came from.
    pub cluster: CrawlCluster,
    /// True when the site came in through the antivirus-company feed of
    /// previously-suspicious pages (may overlap rank-wise with `Rest`).
    pub from_security_feed: bool,
    /// Advertisement slots on the front page.
    pub ad_slots: Vec<AdSlot>,
    /// Whether the publisher applies the HTML5 `sandbox` attribute to ad
    /// iframes. §4.4: in the wild this was 0%; the countermeasure ablation
    /// can switch it on per site.
    pub sandboxes_ads: bool,
}

impl Site {
    /// The site's front-page URL.
    pub fn front_page(&self) -> Url {
        Url::from_parts(malvert_types::url::Scheme::Http, self.domain.as_str(), "/")
    }

    /// Standard IAB-ish creative sizes used by the generator.
    pub const CREATIVE_SIZES: [(u32, u32); 5] =
        [(728, 90), (300, 250), (160, 600), (320, 50), (468, 60)];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_page_url() {
        let site = Site {
            id: SiteId(3),
            domain: DomainName::parse("newsportal7.com").unwrap(),
            rank: 123,
            category: SiteCategory::News,
            cluster: CrawlCluster::Top,
            from_security_feed: false,
            ad_slots: vec![],
            sandboxes_ads: false,
        };
        assert_eq!(site.front_page().to_string(), "http://newsportal7.com/");
    }

    #[test]
    fn cluster_labels() {
        assert_eq!(CrawlCluster::Top.label(), "top-10k");
        assert_eq!(CrawlCluster::Bottom.label(), "bottom-10k");
        assert_eq!(CrawlCluster::Rest.label(), "rest");
    }
}
