//! World-Web generation.

use crate::names::{pick_tld, site_name};
use crate::site::{AdSlot, CrawlCluster, Site};
use malvert_types::rng::SeedTree;
use malvert_types::{AdNetworkId, DetRng, DomainName, SiteCategory, SiteId};

/// Configuration of the generated Web.
///
/// Defaults are the *scaled* study: the same population structure as the
/// paper (top slice / bottom slice / random slice / security feed) at a size
/// that runs the full pipeline in seconds. `WebConfig::paper_scale()` matches
/// the paper's counts.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Size of the simulated global ranking ("Alexa top million").
    pub ranking_universe: u32,
    /// Sites crawled from the top of the ranking (paper: 10,000).
    pub top_slice: u32,
    /// Sites crawled from the bottom of the ranking (paper: 10,000).
    pub bottom_slice: u32,
    /// Randomly-selected mid-ranking sites (paper: 20,000 + TLD slices).
    pub random_slice: u32,
    /// Sites from the antivirus-company feed of previously-suspicious pages.
    pub security_feed: u32,
    /// Number of ad networks publishers can contract (must match the adnet
    /// world built alongside).
    pub ad_network_count: u32,
    /// Fraction of publishers that sandbox their ad iframes (§4.4 found 0).
    pub sandbox_adoption: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            ranking_universe: 100_000,
            top_slice: 800,
            bottom_slice: 800,
            random_slice: 1_600,
            security_feed: 500,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        }
    }
}

impl WebConfig {
    /// The paper's population sizes (slow: ~43k sites).
    pub fn paper_scale() -> Self {
        WebConfig {
            ranking_universe: 1_000_000,
            top_slice: 10_000,
            bottom_slice: 10_000,
            random_slice: 20_000,
            security_feed: 3_000,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        }
    }

    /// Total number of crawled sites.
    pub fn total_sites(&self) -> u32 {
        self.top_slice + self.bottom_slice + self.random_slice + self.security_feed
    }
}

/// The generated Web: the crawled site population.
#[derive(Debug, Clone)]
pub struct WorldWeb {
    /// All crawled sites, indexed by [`SiteId`].
    pub sites: Vec<Site>,
    /// The configuration it was generated from.
    pub config: WebConfig,
}

impl WorldWeb {
    /// Generates the Web deterministically from the study seed.
    pub fn generate(tree: SeedTree, config: &WebConfig) -> WorldWeb {
        let tree = tree.branch("websim");
        let mut sites = Vec::with_capacity(config.total_sites() as usize);
        let mut next_id = 0u32;

        // Top slice: ranks 1..=top_slice.
        for i in 0..config.top_slice {
            let rank = i + 1;
            sites.push(make_site(
                &tree,
                &mut next_id,
                rank,
                CrawlCluster::Top,
                false,
                config,
            ));
        }
        // Bottom slice: the last `bottom_slice` ranks of the universe.
        for i in 0..config.bottom_slice {
            let rank = config.ranking_universe - config.bottom_slice + i + 1;
            sites.push(make_site(
                &tree,
                &mut next_id,
                rank,
                CrawlCluster::Bottom,
                false,
                config,
            ));
        }
        // Random mid-ranking slice.
        let mut mid_rng = tree.branch("mid-ranks").rng();
        for _ in 0..config.random_slice {
            let lo = config.top_slice + 1;
            let hi = config.ranking_universe - config.bottom_slice;
            let rank = mid_rng.range_inclusive(lo as usize, hi as usize) as u32;
            sites.push(make_site(
                &tree,
                &mut next_id,
                rank,
                CrawlCluster::Rest,
                false,
                config,
            ));
        }
        // Security-feed slice: previously-suspicious pages. Mostly mid/low
        // ranking, riskier categories (handled inside make_site).
        let mut feed_rng = tree.branch("feed-ranks").rng();
        for _ in 0..config.security_feed {
            let lo = (config.ranking_universe / 10).max(config.top_slice + 1);
            let hi = config.ranking_universe - config.bottom_slice;
            let rank = feed_rng.range_inclusive(lo as usize, hi as usize) as u32;
            sites.push(make_site(
                &tree,
                &mut next_id,
                rank,
                CrawlCluster::Rest,
                true,
                config,
            ));
        }
        WorldWeb {
            sites,
            config: config.clone(),
        }
    }

    /// Looks up a site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Iterates sites of a cluster.
    pub fn cluster_sites(&self, cluster: CrawlCluster) -> impl Iterator<Item = &Site> {
        self.sites.iter().filter(move |s| s.cluster == cluster)
    }

    /// Total ad slots across the Web (the denominator of Figure 2).
    pub fn total_ad_slots(&self) -> usize {
        self.sites.iter().map(|s| s.ad_slots.len()).sum()
    }
}

fn make_site(
    tree: &SeedTree,
    next_id: &mut u32,
    rank: u32,
    cluster: CrawlCluster,
    from_security_feed: bool,
    config: &WebConfig,
) -> Site {
    let id = SiteId(*next_id);
    *next_id += 1;
    let site_tree = tree.branch("site").branch_idx(u64::from(id.0));
    let mut rng = site_tree.rng();

    let category = pick_category(&mut rng, from_security_feed);
    let host = site_name(category, id.0, &mut rng);
    let tld = pick_tld(&mut rng);
    let domain = DomainName::parse(&format!("{host}.{tld}")).expect("generated domain valid");

    let ad_slots = make_slots(&mut rng, rank, config);
    let sandboxes_ads = rng.chance(config.sandbox_adoption);

    Site {
        id,
        domain,
        rank,
        category,
        cluster,
        from_security_feed,
        ad_slots,
        sandboxes_ads,
    }
}

/// Category mix. The security feed skews toward the categories the paper
/// found malvertising concentrated in (entertainment, news, adult, file
/// sharing); the organic Web is broader.
fn pick_category(rng: &mut DetRng, from_security_feed: bool) -> SiteCategory {
    use SiteCategory::*;
    let (cats, weights): (&[SiteCategory], &[f64]) = if from_security_feed {
        (
            &[Entertainment, News, Adult, FileSharing, Shopping, Technology, Sports, Blogs, Other],
            &[0.24, 0.14, 0.16, 0.14, 0.08, 0.06, 0.06, 0.06, 0.06],
        )
    } else {
        (
            &[
                Entertainment, News, Adult, Shopping, Technology, Sports, FileSharing, Blogs,
                Social, Finance, Travel, Education, Health, Other,
            ],
            &[
                0.16, 0.13, 0.08, 0.10, 0.09, 0.08, 0.05, 0.08, 0.05, 0.05, 0.04, 0.04, 0.03,
                0.02,
            ],
        )
    };
    cats[rng.pick_weighted(weights).expect("positive weights")]
}

/// Ad-slot synthesis: popular sites monetize harder. The paper's top-10k
/// cluster served 76.6% of all observed ads while being ~25% of the crawled
/// sites — so top sites need roughly 6-7x the slot count of the tail.
fn make_slots(rng: &mut DetRng, rank: u32, config: &WebConfig) -> Vec<AdSlot> {
    let slot_count = if rank <= config.top_slice {
        rng.range_inclusive(6, 10)
    } else if rank > config.ranking_universe - config.bottom_slice {
        // Bottom sites often run little or no advertising.
        rng.range_inclusive(0, 1)
    } else {
        rng.range_inclusive(0, 2)
    };
    (0..slot_count)
        .map(|index| {
            let (width, height) = Site::CREATIVE_SIZES[rng.below(Site::CREATIVE_SIZES.len())];
            // Publishers prefer big networks: Zipf-ish weights over ids.
            // The mid-tier network right after the majors gets a visible
            // extra share — it is the aggressively-priced newcomer that the
            // generated ad economy designates as its weakly-filtered
            // "hotspot" (the ~3%-of-traffic network of Figure 2).
            let major_count = (config.ad_network_count / 8).max(3);
            let weights: Vec<f64> = (0..config.ad_network_count)
                .map(|i| {
                    let base = 1.0 / f64::from(i + 1);
                    if i == major_count + 1 {
                        base * 4.0
                    } else {
                        base
                    }
                })
                .collect();
            let network = AdNetworkId(rng.pick_weighted(&weights).expect("weights") as u32);
            AdSlot {
                index,
                network,
                width,
                height,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> WorldWeb {
        WorldWeb::generate(SeedTree::new(42), &WebConfig::default())
    }

    #[test]
    fn population_sizes() {
        let w = world();
        let c = &w.config;
        assert_eq!(w.sites.len() as u32, c.total_sites());
        assert_eq!(
            w.cluster_sites(CrawlCluster::Top).count() as u32,
            c.top_slice
        );
        assert_eq!(
            w.cluster_sites(CrawlCluster::Bottom).count() as u32,
            c.bottom_slice
        );
    }

    #[test]
    fn ids_dense_and_ordered() {
        let w = world();
        for (i, s) in w.sites.iter().enumerate() {
            assert_eq!(s.id.index(), i);
        }
    }

    #[test]
    fn ranks_respect_clusters() {
        let w = world();
        for s in w.cluster_sites(CrawlCluster::Top) {
            assert!(s.rank <= w.config.top_slice);
        }
        for s in w.cluster_sites(CrawlCluster::Bottom) {
            assert!(s.rank > w.config.ranking_universe - w.config.bottom_slice);
        }
        for s in w.cluster_sites(CrawlCluster::Rest) {
            assert!(s.rank > w.config.top_slice);
            assert!(s.rank <= w.config.ranking_universe - w.config.bottom_slice);
        }
    }

    #[test]
    fn domains_unique() {
        let w = world();
        let mut seen = std::collections::BTreeSet::new();
        for s in &w.sites {
            assert!(seen.insert(s.domain.clone()), "duplicate domain {}", s.domain);
        }
    }

    #[test]
    fn top_sites_carry_most_slots() {
        let w = world();
        let top_slots: usize = w
            .cluster_sites(CrawlCluster::Top)
            .map(|s| s.ad_slots.len())
            .sum();
        let total = w.total_ad_slots();
        let share = top_slots as f64 / total as f64;
        // Paper: top cluster served 76.6% of ads. Accept a generous band —
        // the exact share also depends on the crawl, not only slot counts.
        assert!(
            (0.55..0.9).contains(&share),
            "top-cluster slot share {share:.3} out of band"
        );
    }

    #[test]
    fn slot_networks_zipf_ish() {
        let w = world();
        let mut counts = vec![0usize; w.config.ad_network_count as usize];
        for s in &w.sites {
            for slot in &s.ad_slots {
                counts[slot.network.index()] += 1;
            }
        }
        // Network 0 must dominate network 20 heavily.
        assert!(counts[0] > counts[20] * 4, "{} vs {}", counts[0], counts[20]);
        // Every network should appear at least once at this scale.
        assert!(counts.iter().filter(|&&c| c == 0).count() < 5);
    }

    #[test]
    fn no_sandbox_by_default() {
        let w = world();
        assert!(w.sites.iter().all(|s| !s.sandboxes_ads));
    }

    #[test]
    fn sandbox_knob_works() {
        let config = WebConfig {
            sandbox_adoption: 1.0,
            ..WebConfig::default()
        };
        let w = WorldWeb::generate(SeedTree::new(1), &config);
        assert!(w.sites.iter().all(|s| s.sandboxes_ads));
    }

    #[test]
    fn security_feed_skews_risky() {
        let w = world();
        let risky = |c: SiteCategory| {
            matches!(
                c,
                SiteCategory::Entertainment
                    | SiteCategory::Adult
                    | SiteCategory::FileSharing
                    | SiteCategory::News
            )
        };
        let feed_sites: Vec<_> = w.sites.iter().filter(|s| s.from_security_feed).collect();
        let feed_risky =
            feed_sites.iter().filter(|s| risky(s.category)).count() as f64 / feed_sites.len() as f64;
        let organic: Vec<_> = w.sites.iter().filter(|s| !s.from_security_feed).collect();
        let organic_risky =
            organic.iter().filter(|s| risky(s.category)).count() as f64 / organic.len() as f64;
        assert!(
            feed_risky > organic_risky + 0.1,
            "feed {feed_risky:.2} vs organic {organic_risky:.2}"
        );
    }

    #[test]
    fn generation_deterministic() {
        let a = WorldWeb::generate(SeedTree::new(7), &WebConfig::default());
        let b = WorldWeb::generate(SeedTree::new(7), &WebConfig::default());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.ad_slots, y.ad_slots);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldWeb::generate(SeedTree::new(1), &WebConfig::default());
        let b = WorldWeb::generate(SeedTree::new(2), &WebConfig::default());
        let same = a
            .sites
            .iter()
            .zip(&b.sites)
            .filter(|(x, y)| x.domain == y.domain)
            .count();
        assert!(same < a.sites.len() / 10);
    }
}
