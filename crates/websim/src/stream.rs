//! Seed-deterministic impression streams for the service mode.
//!
//! The paper's measurement was a three-month *rolling* observation of live
//! ad traffic; the batch crawl reproduces its analyses, but an always-on
//! scanning service needs a live feed. This module replays one: an
//! unbounded, seed-deterministic stream of ad impressions — which
//! publisher requested which network's slot, on which study day — that a
//! daemon can consume at any pace, kill and resume at any offset, and
//! replay byte-identically.
//!
//! The stream is *addressable*: [`ImpressionStream::impression`] is a pure
//! function of `(seed, index)`, so no generator state exists to persist.
//! A resumed daemon re-derives impression `n` exactly as the killed one
//! would have, and a sharded consumer can admit impressions in any window
//! order without coordination.

use malvert_types::rng::SeedTree;
use malvert_types::SimTime;

/// Shape of a replayed impression stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Ad networks impressions can land on (uniform mix).
    pub networks: u32,
    /// Publisher-id universe the requests claim to come from.
    pub publishers: u32,
    /// Ad slots per publisher page.
    pub slots: usize,
    /// Impressions per study day (sets how fast stream time advances).
    pub per_day: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            networks: 40,
            publishers: 1000,
            slots: 4,
            per_day: 2048,
        }
    }
}

/// One replayed ad impression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Impression {
    /// Position in the stream (the impression's identity and its time
    /// source — resumable cursor).
    pub index: u64,
    /// The study day the impression happened on (`index / per_day`).
    pub day: u32,
    /// The ad network that received the slot request.
    pub network: u32,
    /// The requesting publisher id.
    pub publisher: u32,
    /// The slot on the publisher's page.
    pub slot: usize,
}

impl Impression {
    /// The impression's simulated wall time (refresh 0 of its day).
    pub fn time(self) -> SimTime {
        SimTime::at(self.day, 0)
    }
}

/// A replayable, addressable impression stream: a pure function from
/// stream index to [`Impression`].
#[derive(Debug, Clone)]
pub struct ImpressionStream {
    seeds: SeedTree,
    config: StreamConfig,
}

impl ImpressionStream {
    /// Builds the stream from a seed branch and a shape. Use a dedicated
    /// branch (e.g. `tree.branch("serve-stream")`) so the stream draws
    /// are domain-separated from world generation.
    pub fn new(seeds: SeedTree, config: StreamConfig) -> ImpressionStream {
        assert!(config.networks > 0, "stream needs at least one network");
        assert!(config.publishers > 0, "stream needs at least one publisher");
        assert!(config.slots > 0, "stream needs at least one slot");
        assert!(
            config.per_day > 0,
            "stream needs at least one impression/day"
        );
        ImpressionStream { seeds, config }
    }

    /// The stream's shape.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The impression at `index` — a pure function of `(seed, index)`.
    pub fn impression(&self, index: u64) -> Impression {
        let mut rng = self.seeds.branch_idx(index).rng();
        Impression {
            index,
            day: (index / self.config.per_day) as u32,
            network: rng.below(self.config.networks as usize) as u32,
            publisher: rng.below(self.config.publishers as usize) as u32,
            slot: rng.below(self.config.slots),
        }
    }

    /// The impressions of one contiguous stream window.
    pub fn window(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Impression> + '_ {
        range.map(|index| self.impression(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> ImpressionStream {
        ImpressionStream::new(
            SeedTree::new(seed).branch("serve-stream"),
            StreamConfig::default(),
        )
    }

    #[test]
    fn impressions_are_pure_functions_of_seed_and_index() {
        let a = stream(11);
        let b = stream(11);
        for index in [0u64, 1, 7, 4095, 1_000_000] {
            assert_eq!(a.impression(index), b.impression(index));
        }
        // Random access equals sequential replay.
        let seq: Vec<Impression> = a.window(0..64).collect();
        let mut random: Vec<Impression> = (0..64).rev().map(|i| b.impression(i)).collect();
        random.reverse();
        assert_eq!(seq, random);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = stream(1);
        let b = stream(2);
        let same = (0..256)
            .filter(|&i| a.impression(i) == b.impression(i))
            .count();
        assert!(same < 16, "streams barely diverge: {same}/256 identical");
    }

    #[test]
    fn time_advances_with_the_stream() {
        let s = stream(5);
        let per_day = s.config().per_day;
        assert_eq!(s.impression(0).day, 0);
        assert_eq!(s.impression(per_day - 1).day, 0);
        assert_eq!(s.impression(per_day).day, 1);
        assert_eq!(s.impression(per_day * 10 + 3).day, 10);
    }

    #[test]
    fn fields_stay_in_bounds() {
        let config = StreamConfig {
            networks: 3,
            publishers: 7,
            slots: 2,
            per_day: 16,
        };
        let s = ImpressionStream::new(SeedTree::new(9).branch("serve-stream"), config);
        for imp in s.window(0..512) {
            assert!(imp.network < 3);
            assert!(imp.publisher < 7);
            assert!(imp.slot < 2);
        }
    }
}
