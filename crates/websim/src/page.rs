//! Publisher page rendering and the publisher origin server.

use crate::site::Site;
use malvert_html::entities::escape_attr;
use malvert_net::{Body, HttpRequest, HttpResponse, OriginServer, ServeCtx};
use malvert_types::{DetRng, DomainName};
use std::sync::Arc;

/// Renders a site's front page.
///
/// The page is ordinary HTML: a title, navigation, content paragraphs, an
/// occasional benign widget iframe (so that the crawler's EasyList matching
/// has non-ad iframes to discriminate), and one advertisement iframe per ad
/// slot. Ad iframes point at the slot's contracted network:
///
/// ```text
/// http://<network-domain>/serve?pub=<site-id>&slot=<idx>&w=<w>&h=<h>
/// ```
///
/// Per §4.4, publishers do not apply the `sandbox` attribute unless the
/// site's `sandboxes_ads` countermeasure knob is on.
pub fn render_front_page(
    site: &Site,
    network_domains: &[DomainName],
    rng: &mut DetRng,
) -> String {
    let mut html = String::with_capacity(4096);
    html.push_str("<!DOCTYPE html><html><head><title>");
    html.push_str(&escape_attr(site.domain.as_str()));
    html.push_str("</title><meta charset=\"utf-8\"></head><body>");
    html.push_str(&format!(
        "<h1>{}</h1><div class=\"nav\"><a href=\"/\">home</a> <a href=\"/about\">about</a> \
         <a href=\"/contact\">contact</a></div>",
        escape_attr(site.domain.as_str())
    ));

    // Content paragraphs — amount varies per visit, like dynamic pages do.
    let paragraphs = rng.range_inclusive(3, 8);
    for i in 0..paragraphs {
        html.push_str(&format!(
            "<p class=\"content\">Story {i} of the day on {}: lorem ipsum dolor sit amet, \
             consectetur adipiscing elit, sed do eiusmod tempor incididunt.</p>",
            site.category.label()
        ));
    }

    // A benign widget iframe on some pages (weather/social embeds).
    if rng.chance(0.3) {
        html.push_str(
            "<iframe src=\"http://widgets.embedhub.net/weather?units=c\" \
             width=\"300\" height=\"100\"></iframe>",
        );
    }

    // Ad slots.
    for slot in &site.ad_slots {
        let network_domain = &network_domains[slot.network.index()];
        let sandbox = if site.sandboxes_ads {
            " sandbox=\"allow-scripts\""
        } else {
            ""
        };
        html.push_str(&format!(
            "<iframe src=\"http://{}/serve?pub={}&amp;slot={}&amp;w={}&amp;h={}\" \
             width=\"{}\" height=\"{}\" frameborder=\"0\" scrolling=\"no\"{}></iframe>",
            network_domain.as_str(),
            site.id.0,
            slot.index,
            slot.width,
            slot.height,
            slot.width,
            slot.height,
            sandbox,
        ));
    }

    html.push_str("<div class=\"footer\">&copy; 2014</div></body></html>");
    html
}

/// The origin server for one publisher site.
pub struct PublisherServer {
    site: Site,
    network_domains: Arc<Vec<DomainName>>,
}

impl PublisherServer {
    /// Creates the server for `site`, with the ad-network domain directory.
    pub fn new(site: Site, network_domains: Arc<Vec<DomainName>>) -> Self {
        PublisherServer {
            site,
            network_domains,
        }
    }
}

impl OriginServer for PublisherServer {
    fn handle(&self, req: &HttpRequest, ctx: &mut ServeCtx) -> HttpResponse {
        match req.url.path() {
            "/" => HttpResponse::ok(Body::Html(render_front_page(
                &self.site,
                &self.network_domains,
                &mut ctx.rng,
            ))),
            "/about" | "/contact" => HttpResponse::ok(Body::Html(format!(
                "<html><body><h1>{}</h1><p>About this site.</p></body></html>",
                self.site.domain
            ))),
            _ => HttpResponse::not_found(),
        }
    }
}

/// The benign widget host embedded by some publishers.
pub struct WidgetServer;

/// The well-known widget host domain.
pub fn widget_domain() -> DomainName {
    DomainName::parse("widgets.embedhub.net").expect("static domain valid")
}

impl OriginServer for WidgetServer {
    fn handle(&self, _req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        HttpResponse::ok(Body::Html(
            "<html><body><div class=\"widget\">21&deg;C, partly cloudy</div></body></html>"
                .to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{WebConfig, WorldWeb};
    use malvert_html::parse_document;
    use malvert_types::rng::SeedTree;
    use malvert_types::{SimTime, Url};

    fn sample_world() -> (WorldWeb, Arc<Vec<DomainName>>) {
        let world = WorldWeb::generate(SeedTree::new(50), &WebConfig::default());
        let domains: Vec<DomainName> = (0..world.config.ad_network_count)
            .map(|i| DomainName::parse(&format!("serve{i}.adnet.com")).unwrap())
            .collect();
        (world, Arc::new(domains))
    }

    #[test]
    fn page_contains_one_iframe_per_slot() {
        let (world, domains) = sample_world();
        let site = world
            .sites
            .iter()
            .find(|s| s.ad_slots.len() >= 3)
            .expect("some site has slots");
        let mut rng = SeedTree::new(1).rng();
        let html = render_front_page(site, &domains, &mut rng);
        let doc = parse_document(&html);
        let ad_iframes = doc
            .elements_by_tag("iframe")
            .filter(|&id| {
                doc.element(id)
                    .and_then(|e| e.attr("src"))
                    .map(|src| src.contains("/serve?"))
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(ad_iframes, site.ad_slots.len());
    }

    #[test]
    fn iframe_urls_parse_and_route_to_contracted_network() {
        let (world, domains) = sample_world();
        let site = world
            .sites
            .iter()
            .find(|s| !s.ad_slots.is_empty())
            .unwrap();
        let mut rng = SeedTree::new(2).rng();
        let html = render_front_page(site, &domains, &mut rng);
        let doc = parse_document(&html);
        for id in doc.elements_by_tag("iframe") {
            let src = doc.element(id).unwrap().attr("src").unwrap();
            let url = Url::parse(src).expect("iframe src parses");
            if url.path() == "/serve" {
                let slot_idx: usize = url.query_param("slot").unwrap().parse().unwrap();
                let expected = &domains[site.ad_slots[slot_idx].network.index()];
                assert_eq!(url.host().unwrap(), expected);
                assert_eq!(
                    url.query_param("pub").unwrap(),
                    site.id.0.to_string().as_str()
                );
            }
        }
    }

    #[test]
    fn no_sandbox_attribute_by_default() {
        let (world, domains) = sample_world();
        let site = world
            .sites
            .iter()
            .find(|s| !s.ad_slots.is_empty())
            .unwrap();
        let mut rng = SeedTree::new(3).rng();
        let html = render_front_page(site, &domains, &mut rng);
        let doc = parse_document(&html);
        for id in doc.elements_by_tag("iframe") {
            assert!(!doc.element(id).unwrap().has_attr("sandbox"));
        }
    }

    #[test]
    fn sandbox_knob_adds_attribute() {
        let (world, domains) = sample_world();
        let mut site = world
            .sites
            .iter()
            .find(|s| !s.ad_slots.is_empty())
            .unwrap()
            .clone();
        site.sandboxes_ads = true;
        let mut rng = SeedTree::new(4).rng();
        let html = render_front_page(&site, &domains, &mut rng);
        assert!(html.contains("sandbox=\"allow-scripts\""));
    }

    #[test]
    fn publisher_server_serves_pages() {
        let (world, domains) = sample_world();
        let site = world.sites[0].clone();
        let server = PublisherServer::new(site.clone(), domains);
        let req = HttpRequest::get(site.front_page());
        let mut ctx = ServeCtx::for_request(SeedTree::new(1), SimTime::ZERO, &req);
        let resp = server.handle(&req, &mut ctx);
        assert!(resp.status.is_success());
        assert!(resp.body.as_html().unwrap().contains("<h1>"));

        let req404 = HttpRequest::get(site.front_page().join("/missing").unwrap());
        let mut ctx = ServeCtx::for_request(SeedTree::new(1), SimTime::ZERO, &req404);
        assert_eq!(server.handle(&req404, &mut ctx).status.0, 404);
    }

    #[test]
    fn page_varies_between_refreshes() {
        let (world, domains) = sample_world();
        let site = world.sites[0].clone();
        let mut rng_a = SeedTree::new(10).rng();
        let mut rng_b = SeedTree::new(11).rng();
        let a = render_front_page(&site, &domains, &mut rng_a);
        let b = render_front_page(&site, &domains, &mut rng_b);
        // Different serve RNG → (almost surely) different content volume.
        // We only assert they are valid and non-identical.
        assert_ne!(a, b);
    }

    #[test]
    fn widget_server_is_benign() {
        let req = HttpRequest::get(Url::parse("http://widgets.embedhub.net/weather").unwrap());
        let mut ctx = ServeCtx::for_request(SeedTree::new(1), SimTime::ZERO, &req);
        let resp = WidgetServer.handle(&req, &mut ctx);
        assert!(resp.status.is_success());
        assert!(resp.body.as_html().unwrap().contains("widget"));
    }
}
