//! Deterministic domain-name generation.

use malvert_types::{DetRng, SiteCategory};

/// Word stock for site-name synthesis, grouped loosely by flavour so that a
/// site's name correlates with its category (the way `dailysportsfeed.com`
//  telegraphs sports content).
const GENERIC_WORDS: &[&str] = &[
    "daily", "web", "net", "info", "online", "portal", "world", "zone", "hub", "spot", "base",
    "link", "page", "site", "place", "corner", "point", "center", "city", "land", "planet",
    "global", "prime", "meta", "ultra", "super", "mega", "top", "best", "free",
];

const CATEGORY_WORDS: &[(&str, &[&str])] = &[
    ("entertainment", &["movie", "stream", "video", "tube", "show", "star", "celeb", "fun", "play", "games"]),
    ("news", &["news", "press", "times", "herald", "tribune", "report", "wire", "gazette", "journal", "post"]),
    ("adult", &["adult", "cam", "flirt", "date", "night", "xx", "hot", "spicy", "velvet", "lace"]),
    ("shopping", &["shop", "deal", "store", "market", "buy", "bargain", "mall", "cart", "coupon", "outlet"]),
    ("technology", &["tech", "code", "dev", "byte", "cloud", "data", "gadget", "pixel", "soft", "labs"]),
    ("sports", &["sport", "score", "league", "match", "goal", "field", "track", "arena", "team", "champ"]),
    ("filesharing", &["file", "share", "down", "load", "torrent", "mirror", "upload", "drop", "locker", "vault"]),
    ("blogs", &["blog", "diary", "life", "notes", "story", "voice", "ink", "words", "muse", "scribe"]),
    ("social", &["social", "friend", "connect", "circle", "group", "chat", "meet", "face", "tribe", "buzz"]),
    ("finance", &["bank", "coin", "trade", "invest", "money", "fund", "capital", "stock", "wealth", "credit"]),
    ("travel", &["travel", "trip", "tour", "fly", "hotel", "journey", "voyage", "beach", "escape", "roam"]),
    ("education", &["learn", "study", "academy", "campus", "tutor", "class", "lesson", "wiki", "ref", "quiz"]),
    ("health", &["health", "fit", "care", "medic", "well", "vital", "diet", "cure", "clinic", "pulse"]),
];

/// Picks the word stock for a category.
fn words_for(category: SiteCategory) -> &'static [&'static str] {
    let key = match category {
        SiteCategory::Entertainment => "entertainment",
        SiteCategory::News => "news",
        SiteCategory::Adult => "adult",
        SiteCategory::Shopping => "shopping",
        SiteCategory::Technology => "technology",
        SiteCategory::Sports => "sports",
        SiteCategory::FileSharing => "filesharing",
        SiteCategory::Blogs => "blogs",
        SiteCategory::Social => "social",
        SiteCategory::Finance => "finance",
        SiteCategory::Travel => "travel",
        SiteCategory::Education => "education",
        SiteCategory::Health => "health",
        SiteCategory::Other => return GENERIC_WORDS,
    };
    CATEGORY_WORDS
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, w)| *w)
        .unwrap_or(GENERIC_WORDS)
}

/// Synthesizes a site host name (without TLD) for a category.
///
/// Names combine a category word with a generic word, optionally a numeric
/// suffix — collision-free naming is the caller's job (append the id).
pub fn site_name(category: SiteCategory, uniquifier: u32, rng: &mut DetRng) -> String {
    let cat_words = words_for(category);
    let a = cat_words[rng.below(cat_words.len())];
    let b = GENERIC_WORDS[rng.below(GENERIC_WORDS.len())];
    match rng.below(4) {
        0 => format!("{a}{b}{uniquifier}"),
        1 => format!("{b}{a}{uniquifier}"),
        2 => format!("{a}-{b}{uniquifier}"),
        _ => format!("{a}{uniquifier}"),
    }
}

/// TLD distribution approximating Figure 4's observation: `.com` dominates,
/// generic TLDs together carry about two thirds, the rest is spread over
/// country codes.
pub const TLD_WEIGHTS: &[(&str, f64)] = &[
    ("com", 0.44),
    ("net", 0.12),
    ("org", 0.07),
    ("info", 0.03),
    ("biz", 0.02),
    ("de", 0.05),
    ("uk", 0.04),
    ("ru", 0.04),
    ("fr", 0.03),
    ("nl", 0.02),
    ("br", 0.02),
    ("cn", 0.02),
    ("jp", 0.02),
    ("in", 0.015),
    ("it", 0.015),
    ("es", 0.01),
    ("pl", 0.01),
    ("ca", 0.01),
    ("au", 0.01),
    ("tv", 0.01),
];

/// Draws a TLD from the distribution.
pub fn pick_tld(rng: &mut DetRng) -> &'static str {
    let weights: Vec<f64> = TLD_WEIGHTS.iter().map(|(_, w)| *w).collect();
    let idx = rng.pick_weighted(&weights).expect("weights are positive");
    TLD_WEIGHTS[idx].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_types::DomainName;

    #[test]
    fn names_are_valid_domain_labels() {
        let mut rng = DetRng::new(1);
        for i in 0..200 {
            let cat = SiteCategory::ALL[i % SiteCategory::ALL.len()];
            let name = site_name(cat, i as u32, &mut rng);
            let full = format!("{name}.com");
            assert!(
                DomainName::parse(&full).is_ok(),
                "generated name {full} invalid"
            );
        }
    }

    #[test]
    fn names_unique_with_uniquifier() {
        let mut rng = DetRng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..500 {
            let name = site_name(SiteCategory::News, i, &mut rng);
            assert!(seen.insert(name));
        }
    }

    #[test]
    fn tld_distribution_com_heavy() {
        let mut rng = DetRng::new(3);
        let mut com = 0;
        let mut generic = 0;
        let n = 10_000;
        for _ in 0..n {
            let tld = pick_tld(&mut rng);
            if tld == "com" {
                com += 1;
            }
            if ["com", "net", "org", "info", "biz"].contains(&tld) {
                generic += 1;
            }
        }
        assert!((4_000..5_200).contains(&com), "com count {com}");
        assert!(generic as f64 / n as f64 > 0.6, "gTLD share too low");
    }

    #[test]
    fn weights_sum_to_one_ish() {
        let sum: f64 = TLD_WEIGHTS.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 0.01, "TLD weights sum {sum}");
    }

    #[test]
    fn category_flavour_in_names() {
        let mut rng = DetRng::new(4);
        let sports_words = ["sport", "score", "league", "match", "goal", "field", "track", "arena", "team", "champ"];
        let hits = (0..100)
            .filter(|i| {
                let name = site_name(SiteCategory::Sports, *i, &mut rng);
                sports_words.iter().any(|w| name.contains(w))
            })
            .count();
        assert!(hits > 80, "sports names should use sports words: {hits}/100");
    }
}
