//! Deterministic, seed-driven fault injection.
//!
//! A live crawl meets failure constantly: resolvers flap, ad servers 500,
//! connections reset mid-transfer, slow hosts hang, and creatives arrive as
//! corrupted markup. The simulated substrate injects the same failure modes
//! from the study seed so the measurement apparatus can be proven robust —
//! and measured — under them.
//!
//! Determinism contract: every fault decision is a pure function of
//! `(study seed, simulated time, request URL)`, derived exactly like
//! [`crate::ServeCtx::for_request`] but under the `"fault"` branch label. No
//! wall clock, thread id, or scheduling feeds a decision, so a run with a
//! given seed and profile is byte-identical at any worker count. With no
//! profile attached the injector draws nothing and the network behaves
//! exactly as before.

use malvert_types::rng::SeedTree;
use malvert_types::{SimTime, Url};

/// The failure mode injected into one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The resolver transiently returns NXDOMAIN for a live host.
    NxFlap,
    /// The origin answers 500 instead of serving.
    ServerError,
    /// The connection is reset before any response arrives.
    ConnectionReset,
    /// The host is too slow; the request exceeds its time budget.
    Timeout,
    /// The response body is cut short mid-transfer.
    TruncatedBody,
    /// The document is delivered with corrupted markup.
    MalformedHtml,
}

impl FaultKind {
    /// Stable label used in trace spans and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NxFlap => "nx_flap",
            FaultKind::ServerError => "server_error",
            FaultKind::ConnectionReset => "connection_reset",
            FaultKind::Timeout => "timeout",
            FaultKind::TruncatedBody => "truncated_body",
            FaultKind::MalformedHtml => "malformed_html",
        }
    }

    /// True for faults that clear after enough retries (the request
    /// eventually succeeds); persistent faults damage the response instead
    /// of failing it and are never retried.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FaultKind::NxFlap
                | FaultKind::ServerError
                | FaultKind::ConnectionReset
                | FaultKind::Timeout
        )
    }
}

/// Per-request-kind injection probabilities. Probabilities are evaluated
/// against a single uniform draw in declaration order, so they should sum to
/// at most 1.0 (anything beyond the sum means "no fault").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability of a transient NXDOMAIN flap.
    pub nx_flap: f64,
    /// Probability of a 5xx answer.
    pub server_error: f64,
    /// Probability of a connection reset.
    pub connection_reset: f64,
    /// Probability of a timeout (slow host).
    pub timeout: f64,
    /// Probability of a truncated body.
    pub truncated_body: f64,
    /// Probability of malformed-HTML corruption.
    pub malformed_html: f64,
    /// Transient faults clear after `1..=max_flaps` failed attempts.
    pub max_flaps: u32,
}

impl Default for FaultProfile {
    /// All probabilities zero — attach-able but inert. Useful as a struct
    /// base for tests that force one fault kind to certainty.
    fn default() -> Self {
        FaultProfile {
            nx_flap: 0.0,
            server_error: 0.0,
            connection_reset: 0.0,
            timeout: 0.0,
            truncated_body: 0.0,
            malformed_html: 0.0,
            max_flaps: 1,
        }
    }
}

impl FaultProfile {
    /// A light chaos profile: roughly 3% of requests fault.
    pub fn light() -> Self {
        FaultProfile {
            nx_flap: 0.005,
            server_error: 0.008,
            connection_reset: 0.005,
            timeout: 0.004,
            truncated_body: 0.004,
            malformed_html: 0.004,
            max_flaps: 2,
        }
    }

    /// A heavy chaos profile: roughly 18% of requests fault.
    pub fn heavy() -> Self {
        FaultProfile {
            nx_flap: 0.03,
            server_error: 0.05,
            connection_reset: 0.03,
            timeout: 0.02,
            truncated_body: 0.025,
            malformed_html: 0.025,
            max_flaps: 3,
        }
    }

    /// Looks up a named profile (`"light"` or `"heavy"`). `None` for
    /// anything else — callers map `"none"` to no profile themselves.
    pub fn named(name: &str) -> Option<FaultProfile> {
        match name {
            "light" => Some(FaultProfile::light()),
            "heavy" => Some(FaultProfile::heavy()),
            _ => None,
        }
    }

    /// Derives the fault plan for one request. Pure function of
    /// `(study, time, url)` — the same request always draws the same plan,
    /// which is what makes per-attempt recovery deterministic.
    pub fn plan_for(&self, study: SeedTree, time: SimTime, url: &Url) -> FaultPlan {
        let mut rng = study
            .branch("fault")
            .branch_idx(u64::from(time.day))
            .branch_idx(u64::from(time.refresh))
            .branch(&url.without_fragment())
            .rng();
        let draw = rng.unit_f64();
        let mut threshold = 0.0;
        let mut kind = None;
        for (p, k) in [
            (self.nx_flap, FaultKind::NxFlap),
            (self.server_error, FaultKind::ServerError),
            (self.connection_reset, FaultKind::ConnectionReset),
            (self.timeout, FaultKind::Timeout),
            (self.truncated_body, FaultKind::TruncatedBody),
            (self.malformed_html, FaultKind::MalformedHtml),
        ] {
            threshold += p.clamp(0.0, 1.0);
            if draw < threshold {
                kind = Some(k);
                break;
            }
        }
        let flaps = match kind {
            Some(k) if k.is_transient() => 1 + rng.below(self.max_flaps.max(1) as usize) as u32,
            _ => 0,
        };
        let corruption_seed = (rng.below(1 << 31)) as u64;
        FaultPlan {
            kind,
            flaps,
            corruption_seed,
        }
    }
}

/// The fault plan for one request: which failure mode (if any) this request
/// draws, how many attempts a transient fault consumes before clearing, and
/// the deterministic corruption parameter for body-damaging faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected failure mode, or `None` for a clean request.
    pub kind: Option<FaultKind>,
    /// For transient kinds: attempts `0..flaps` fail, attempt `flaps`
    /// onwards succeeds. Zero for persistent kinds and clean requests.
    pub flaps: u32,
    /// Seed for deterministic body corruption (truncation offset, garbage
    /// splice position).
    pub corruption_seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub const CLEAN: FaultPlan = FaultPlan {
        kind: None,
        flaps: 0,
        corruption_seed: 0,
    };

    /// True when `kind` is a transient fault still active at `attempt`.
    pub fn fails_attempt(&self, attempt: u32) -> bool {
        match self.kind {
            Some(k) if k.is_transient() => attempt < self.flaps,
            _ => false,
        }
    }
}

/// Truncates a UTF-8 body to a deterministic fraction of its length,
/// snapping down to a char boundary. Returns the new length.
pub(crate) fn truncate_len(len: usize, corruption_seed: u64) -> usize {
    if len == 0 {
        return 0;
    }
    // Keep 10%..=80% of the body.
    let keep_permille = 100 + (corruption_seed % 701) as usize;
    len * keep_permille / 1000
}

/// Deterministically corrupts an HTML document in place: cut it at the
/// corruption offset and splice in garbage that typically breaks tag
/// structure mid-token. The result is still valid UTF-8; the parser must
/// produce a best-effort DOM from it.
pub(crate) fn corrupt_html(html: &str, corruption_seed: u64) -> String {
    if html.is_empty() {
        return String::from("<");
    }
    let mut cut = truncate_len(html.len(), corruption_seed);
    while cut < html.len() && !html.is_char_boundary(cut) {
        cut += 1;
    }
    let garbage = match corruption_seed % 5 {
        0 => "<di<v a=\"",
        1 => "</scr<ipt </",
        2 => "<iframe src='",
        3 => "&#x;<a hr=ef",
        _ => "<!-- <b",
    };
    let mut out = String::with_capacity(cut + garbage.len());
    out.push_str(&html[..cut]);
    out.push_str(garbage);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn plans_are_deterministic_per_request() {
        let profile = FaultProfile::heavy();
        let tree = SeedTree::new(42);
        let u = url("http://ads.example.com/serve?slot=3");
        let a = profile.plan_for(tree, SimTime::at(2, 1), &u);
        let b = profile.plan_for(tree, SimTime::at(2, 1), &u);
        assert_eq!(a, b);
    }

    #[test]
    fn plans_vary_across_time_and_url() {
        // With a heavy profile over many (time, url) points, at least one
        // request draws a fault and at least one stays clean.
        let profile = FaultProfile::heavy();
        let tree = SeedTree::new(7);
        let mut faulted = 0;
        let mut clean = 0;
        for day in 0..10 {
            for i in 0..20 {
                let u = url(&format!("http://site-{i}.example.com/page"));
                let plan = profile.plan_for(tree, SimTime::at(day, 0), &u);
                if plan.kind.is_some() {
                    faulted += 1;
                } else {
                    clean += 1;
                }
            }
        }
        assert!(faulted > 0, "heavy profile never injected a fault");
        assert!(clean > 0, "heavy profile faulted every request");
    }

    #[test]
    fn transient_faults_clear_after_flaps() {
        let plan = FaultPlan {
            kind: Some(FaultKind::Timeout),
            flaps: 2,
            corruption_seed: 0,
        };
        assert!(plan.fails_attempt(0));
        assert!(plan.fails_attempt(1));
        assert!(!plan.fails_attempt(2));
        assert!(!plan.fails_attempt(9));
    }

    #[test]
    fn persistent_faults_never_fail_attempts() {
        let plan = FaultPlan {
            kind: Some(FaultKind::TruncatedBody),
            flaps: 0,
            corruption_seed: 1,
        };
        assert!(!plan.fails_attempt(0));
    }

    #[test]
    fn named_profiles() {
        assert!(FaultProfile::named("light").is_some());
        assert!(FaultProfile::named("heavy").is_some());
        assert!(FaultProfile::named("none").is_none());
        assert!(FaultProfile::named("medium").is_none());
    }

    #[test]
    fn corruption_preserves_utf8_and_is_deterministic() {
        let html = "<html><body>caf\u{e9} \u{1f4a3} <p>x</p></body></html>";
        for seed in 0..50 {
            let a = corrupt_html(html, seed);
            let b = corrupt_html(html, seed);
            assert_eq!(a, b, "corruption must be deterministic");
            assert!(!a.is_empty());
            // The cut snapped to a char boundary: re-encoding through chars
            // reproduces the string (String itself guarantees UTF-8).
            assert_eq!(a.chars().collect::<String>(), a);
        }
    }

    #[test]
    fn truncate_len_bounds() {
        for seed in 0..100 {
            let n = truncate_len(1000, seed);
            assert!((100..=800).contains(&n), "len {n} out of bounds");
        }
        assert_eq!(truncate_len(0, 3), 0);
    }
}
