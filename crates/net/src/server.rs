//! The origin-server abstraction.

use crate::message::{HttpRequest, HttpResponse};
use malvert_types::rng::SeedTree;
use malvert_types::{DetRng, SimTime};

/// Per-request context handed to servers.
///
/// Servers must be deterministic functions of `(request, ctx)`: the context
/// carries the simulated time and a request-scoped RNG derived from the
/// study seed, the time, and the request URL — so the same crawl replays
/// identically, but two refreshes of the same page can serve different ads
/// (the reason the paper refreshed each page five times).
#[derive(Debug)]
pub struct ServeCtx {
    /// Simulated time of the request.
    pub time: SimTime,
    /// Request-scoped deterministic RNG.
    pub rng: DetRng,
}

impl ServeCtx {
    /// Derives a context for one request.
    pub fn for_request(study: SeedTree, time: SimTime, req: &HttpRequest) -> Self {
        let rng = study
            .branch("serve")
            .branch_idx(u64::from(time.day))
            .branch_idx(u64::from(time.refresh))
            .branch(&req.url.without_fragment())
            .rng();
        ServeCtx { time, rng }
    }
}

/// A simulated origin server: publisher site, ad network front end, exploit
/// kit landing host, payload host, shortener, …
///
/// Implementations must be `Send + Sync`; the crawler shares one [`crate::Network`]
/// across worker threads. Determinism contract: `handle` must depend only on
/// its arguments (interior mutability would break replay and is not used).
pub trait OriginServer: Send + Sync {
    /// Produces the response for `req`.
    fn handle(&self, req: &HttpRequest, ctx: &mut ServeCtx) -> HttpResponse;
}

impl<F> OriginServer for F
where
    F: Fn(&HttpRequest, &mut ServeCtx) -> HttpResponse + Send + Sync,
{
    fn handle(&self, req: &HttpRequest, ctx: &mut ServeCtx) -> HttpResponse {
        self(req, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Body, HttpRequest};
    use malvert_types::Url;

    #[test]
    fn closure_servers_work() {
        let server = |req: &HttpRequest, _ctx: &mut ServeCtx| {
            HttpResponse::ok(Body::Html(format!("<p>{}</p>", req.url.path())))
        };
        let url = Url::parse("http://x.com/hello").unwrap();
        let mut ctx = ServeCtx::for_request(SeedTree::new(1), SimTime::ZERO, &HttpRequest::get(url.clone()));
        let resp = server.handle(&HttpRequest::get(url), &mut ctx);
        assert_eq!(resp.body.as_html(), Some("<p>/hello</p>"));
    }

    #[test]
    fn ctx_rng_deterministic_per_request() {
        let url = Url::parse("http://x.com/a").unwrap();
        let req = HttpRequest::get(url);
        let mut a = ServeCtx::for_request(SeedTree::new(7), SimTime::at(3, 1), &req);
        let mut b = ServeCtx::for_request(SeedTree::new(7), SimTime::at(3, 1), &req);
        assert_eq!(a.rng.unit_f64().to_bits(), b.rng.unit_f64().to_bits());
    }

    #[test]
    fn ctx_rng_varies_by_refresh_and_url() {
        let req_a = HttpRequest::get(Url::parse("http://x.com/a").unwrap());
        let req_b = HttpRequest::get(Url::parse("http://x.com/b").unwrap());
        let mut r1 = ServeCtx::for_request(SeedTree::new(7), SimTime::at(0, 0), &req_a);
        let mut r2 = ServeCtx::for_request(SeedTree::new(7), SimTime::at(0, 1), &req_a);
        let mut r3 = ServeCtx::for_request(SeedTree::new(7), SimTime::at(0, 0), &req_b);
        let x1 = r1.rng.unit_f64();
        let x2 = r2.rng.unit_f64();
        let x3 = r3.rng.unit_f64();
        assert_ne!(x1.to_bits(), x2.to_bits());
        assert_ne!(x1.to_bits(), x3.to_bits());
    }

    #[test]
    fn ctx_rng_ignores_fragment() {
        let req_a = HttpRequest::get(Url::parse("http://x.com/a#one").unwrap());
        let req_b = HttpRequest::get(Url::parse("http://x.com/a#two").unwrap());
        let mut r1 = ServeCtx::for_request(SeedTree::new(7), SimTime::ZERO, &req_a);
        let mut r2 = ServeCtx::for_request(SeedTree::new(7), SimTime::ZERO, &req_b);
        assert_eq!(r1.rng.unit_f64().to_bits(), r2.rng.unit_f64().to_bits());
    }
}
