//! HTTP request and response types.

use bytes::Bytes;
use malvert_types::Url;

/// HTTP request method. The simulation uses GET for everything a crawler
/// issues; POST exists for completeness of beacon-style ad callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
}

impl Method {
    /// Canonical method string.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// HTTP status code (the subset the simulation emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 301 Moved Permanently
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found
    pub const FOUND: StatusCode = StatusCode(302);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error
    pub const INTERNAL_ERROR: StatusCode = StatusCode(500);

    /// True for 3xx codes.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// True for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// A response body, typed by what the simulation serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// No body (redirects, errors).
    Empty,
    /// An HTML document.
    Html(String),
    /// A JavaScript (AdScript) source file.
    Script(String),
    /// An image (only its identity/size matter).
    Image(Bytes),
    /// A downloadable binary: simulated executable or Flash file.
    Download(Bytes),
}

impl Body {
    /// The MIME type the simulation attaches to this body.
    pub fn content_type(&self) -> &'static str {
        match self {
            Body::Empty => "text/plain",
            Body::Html(_) => "text/html",
            Body::Script(_) => "application/javascript",
            Body::Image(_) => "image/png",
            Body::Download(_) => "application/octet-stream",
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Body::Empty => 0,
            Body::Html(s) | Body::Script(s) => s.len(),
            Body::Image(b) | Body::Download(b) => b.len(),
        }
    }

    /// True when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the HTML text, when this is an HTML body.
    pub fn as_html(&self) -> Option<&str> {
        match self {
            Body::Html(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the script text, when this is a script body.
    pub fn as_script(&self) -> Option<&str> {
        match self {
            Body::Script(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows download bytes, when this is a download body.
    pub fn as_download(&self) -> Option<&Bytes> {
        match self {
            Body::Download(b) => Some(b),
            _ => None,
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// `Referer` header, when the request was triggered from a page.
    pub referrer: Option<Url>,
    /// `User-Agent` header value.
    pub user_agent: String,
    /// `Cookie` header value (empty when no cookies apply).
    pub cookies: String,
}

impl HttpRequest {
    /// A GET request with no referrer and the crawler's default user agent.
    pub fn get(url: Url) -> Self {
        HttpRequest {
            method: Method::Get,
            url,
            referrer: None,
            user_agent: "Mozilla/5.0 (X11; Linux x86_64; rv:24.0) Gecko/20100101 Firefox/24.0"
                .to_string(),
            cookies: String::new(),
        }
    }

    /// Sets the referrer.
    pub fn with_referrer(mut self, referrer: Url) -> Self {
        self.referrer = Some(referrer);
        self
    }

    /// Sets the user agent.
    pub fn with_user_agent(mut self, ua: &str) -> Self {
        self.user_agent = ua.to_string();
        self
    }

    /// Sets the `Cookie` header value.
    pub fn with_cookies(mut self, cookies: String) -> Self {
        self.cookies = cookies;
        self
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Body.
    pub body: Body,
    /// `Location` header for redirects, already absolute.
    pub location: Option<Url>,
    /// A raw (possibly relative) `Location` reference, as real servers are
    /// allowed to send. The network resolves it against the request URL
    /// during the fetch; when it cannot be resolved, the redirect surfaces
    /// as a typed `BadRedirect` error instead of a panic.
    pub location_ref: Option<String>,
    /// `Content-Disposition: attachment` filename, for forced downloads.
    pub attachment_filename: Option<String>,
    /// `Set-Cookie` pairs the response carries.
    pub set_cookies: Vec<(String, String)>,
}

impl HttpResponse {
    /// A 200 response with the given body.
    pub fn ok(body: Body) -> Self {
        HttpResponse {
            status: StatusCode::OK,
            body,
            location: None,
            location_ref: None,
            attachment_filename: None,
            set_cookies: Vec::new(),
        }
    }

    /// A 302 redirect to `target`.
    pub fn redirect(target: Url) -> Self {
        HttpResponse {
            status: StatusCode::FOUND,
            body: Body::Empty,
            location: Some(target),
            location_ref: None,
            attachment_filename: None,
            set_cookies: Vec::new(),
        }
    }

    /// A 301 permanent redirect to `target`.
    pub fn moved(target: Url) -> Self {
        HttpResponse {
            status: StatusCode::MOVED_PERMANENTLY,
            body: Body::Empty,
            location: Some(target),
            location_ref: None,
            attachment_filename: None,
            set_cookies: Vec::new(),
        }
    }

    /// A 302 redirect carrying a raw `Location` reference (possibly
    /// relative); the network resolves it against the request URL.
    pub fn redirect_to(reference: &str) -> Self {
        HttpResponse {
            status: StatusCode::FOUND,
            body: Body::Empty,
            location: None,
            location_ref: Some(reference.to_string()),
            attachment_filename: None,
            set_cookies: Vec::new(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        HttpResponse {
            status: StatusCode::NOT_FOUND,
            body: Body::Empty,
            location: None,
            location_ref: None,
            attachment_filename: None,
            set_cookies: Vec::new(),
        }
    }

    /// Marks the response as a forced download with the given filename.
    pub fn as_attachment(mut self, filename: &str) -> Self {
        self.attachment_filename = Some(filename.to_string());
        self
    }

    /// Adds a `Set-Cookie` pair.
    pub fn with_cookie(mut self, name: &str, value: &str) -> Self {
        self.set_cookies.push((name.to_string(), value.to_string()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::OK.is_redirect());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::MOVED_PERMANENTLY.is_redirect());
        assert!(!StatusCode::NOT_FOUND.is_success());
    }

    #[test]
    fn body_content_types() {
        assert_eq!(Body::Html("x".into()).content_type(), "text/html");
        assert_eq!(
            Body::Script("x".into()).content_type(),
            "application/javascript"
        );
        assert_eq!(
            Body::Download(Bytes::from_static(b"MZ")).content_type(),
            "application/octet-stream"
        );
    }

    #[test]
    fn body_accessors() {
        let html = Body::Html("<p>".into());
        assert_eq!(html.as_html(), Some("<p>"));
        assert_eq!(html.as_script(), None);
        assert_eq!(html.len(), 3);
        assert!(Body::Empty.is_empty());
    }

    #[test]
    fn request_builders() {
        let url = Url::parse("http://a.com/").unwrap();
        let referrer = Url::parse("http://r.com/").unwrap();
        let req = HttpRequest::get(url.clone())
            .with_referrer(referrer.clone())
            .with_user_agent("TestUA");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.referrer, Some(referrer));
        assert_eq!(req.user_agent, "TestUA");
    }

    #[test]
    fn response_builders() {
        let target = Url::parse("http://b.com/next").unwrap();
        let r = HttpResponse::redirect(target.clone());
        assert!(r.status.is_redirect());
        assert_eq!(r.location, Some(target));

        let dl = HttpResponse::ok(Body::Download(Bytes::from_static(b"MZ\x90")))
            .as_attachment("update.exe");
        assert_eq!(dl.attachment_filename.as_deref(), Some("update.exe"));

        let rel = HttpResponse::redirect_to("../up/one");
        assert!(rel.status.is_redirect());
        assert_eq!(rel.location, None);
        assert_eq!(rel.location_ref.as_deref(), Some("../up/one"));
    }
}
