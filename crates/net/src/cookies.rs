//! A minimal cookie jar.
//!
//! Real advertisements lean on cookies for frequency capping and user
//! tagging; the browser carries one [`CookieJar`] per page visit (the
//! crawler starts every visit with a fresh profile, like the paper's
//! Selenium setup, which is precisely why frequency caps never hid ads from
//! the study).
//!
//! Scoping follows the classic model: a cookie set by `ads.example.com` is
//! visible to every host within `example.com` (registered-domain scope) —
//! enough for ad-tech patterns without the full RFC 6265 attribute grammar.

use malvert_types::DomainName;
use std::collections::BTreeMap;

/// A cookie jar: `(registered domain, name) → value`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CookieJar {
    cookies: BTreeMap<(String, String), String>,
}

impl CookieJar {
    /// Creates an empty jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scope key for a host: its registered domain (falling back to the full
    /// host when there is no registrable part).
    fn scope(host: &DomainName) -> String {
        host.registered_domain()
            .map(|r| r.as_str().to_string())
            .unwrap_or_else(|| host.as_str().to_string())
    }

    /// Stores a cookie set by `host`.
    pub fn store(&mut self, host: &DomainName, name: &str, value: &str) {
        self.cookies
            .insert((Self::scope(host), name.to_string()), value.to_string());
    }

    /// Parses and stores a `name=value` pair (the `document.cookie = "k=v"`
    /// assignment form). Attributes after `;` are ignored.
    pub fn store_pair(&mut self, host: &DomainName, pair: &str) {
        let pair = pair.split(';').next().unwrap_or("");
        if let Some((name, value)) = pair.split_once('=') {
            let name = name.trim();
            if !name.is_empty() {
                self.store(host, name, value.trim());
            }
        }
    }

    /// The `Cookie` header value for a request to `host`
    /// (`"a=1; b=2"`, names sorted; empty string when none apply).
    pub fn header_for(&self, host: &DomainName) -> String {
        let scope = Self::scope(host);
        self.cookies
            .iter()
            .filter(|((s, _), _)| *s == scope)
            .map(|((_, name), value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Reads one cookie visible to `host`.
    pub fn get(&self, host: &DomainName, name: &str) -> Option<&str> {
        self.cookies
            .get(&(Self::scope(host), name.to_string()))
            .map(String::as_str)
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// True when the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn store_and_read_same_host() {
        let mut jar = CookieJar::new();
        jar.store(&host("ads.example.com"), "fcap", "1");
        assert_eq!(jar.get(&host("ads.example.com"), "fcap"), Some("1"));
    }

    #[test]
    fn registered_domain_scope() {
        let mut jar = CookieJar::new();
        jar.store(&host("ads.example.com"), "uid", "abc");
        // Visible across the registered domain...
        assert_eq!(jar.get(&host("www.example.com"), "uid"), Some("abc"));
        assert_eq!(jar.get(&host("example.com"), "uid"), Some("abc"));
        // ...but not across registered domains.
        assert_eq!(jar.get(&host("example.org"), "uid"), None);
        assert_eq!(jar.get(&host("notexample.com"), "uid"), None);
    }

    #[test]
    fn header_sorted_and_scoped() {
        let mut jar = CookieJar::new();
        jar.store(&host("a.com"), "z", "26");
        jar.store(&host("a.com"), "a", "1");
        jar.store(&host("b.com"), "x", "0");
        assert_eq!(jar.header_for(&host("a.com")), "a=1; z=26");
        assert_eq!(jar.header_for(&host("b.com")), "x=0");
        assert_eq!(jar.header_for(&host("c.com")), "");
    }

    #[test]
    fn store_pair_parses_assignment_form() {
        let mut jar = CookieJar::new();
        jar.store_pair(&host("a.com"), "fcap=1; path=/; max-age=86400");
        assert_eq!(jar.get(&host("a.com"), "fcap"), Some("1"));
        // Overwrite.
        jar.store_pair(&host("a.com"), "fcap=2");
        assert_eq!(jar.get(&host("a.com"), "fcap"), Some("2"));
        // Malformed pairs are ignored.
        jar.store_pair(&host("a.com"), "no-equals-sign");
        jar.store_pair(&host("a.com"), "=value-only");
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn two_level_suffix_scope() {
        let mut jar = CookieJar::new();
        jar.store(&host("shop.example.co.uk"), "k", "v");
        assert_eq!(jar.get(&host("www.example.co.uk"), "k"), Some("v"));
        assert_eq!(jar.get(&host("other.co.uk"), "k"), None);
    }
}
