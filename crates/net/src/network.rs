//! The simulated network: domain routing, DNS failures, redirect following.

use crate::capture::TrafficCapture;
use crate::message::{HttpRequest, HttpResponse};
use crate::server::{OriginServer, ServeCtx};
use malvert_types::rng::SeedTree;
use malvert_types::{DomainName, SimTime, Url};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors produced by [`Network::fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The host has no registered server and is not a registered NX domain.
    NxDomain(DomainName),
    /// A redirect chain exceeded the hop limit.
    TooManyRedirects(Url),
    /// A redirect response carried no `Location`.
    BadRedirect(Url),
    /// The URL has no host (`about:` URLs are not fetchable).
    NotFetchable(Url),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NxDomain(d) => write!(f, "NXDOMAIN: {d}"),
            NetError::TooManyRedirects(u) => write!(f, "too many redirects fetching {u}"),
            NetError::BadRedirect(u) => write!(f, "redirect without Location at {u}"),
            NetError::NotFetchable(u) => write!(f, "URL is not fetchable: {u}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The result of a redirect-following fetch: the final response plus the URL
/// it was served from.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Final (non-redirect) response.
    pub response: HttpResponse,
    /// URL the final response came from.
    pub final_url: Url,
    /// Number of redirect hops followed (0 = direct).
    pub hops: u32,
}

/// Maximum redirect hops followed before giving up. The paper observed
/// arbitration chains of up to 30 auctions (§4.3); browsers commonly cap at
/// 20 — we use a cap comfortably above the longest simulated chain so the
/// measurement sees full chains, while still bounding loops.
pub const MAX_REDIRECT_HOPS: u32 = 48;

/// The simulated Internet: a routing table from domains to origin servers.
///
/// Cloneable via `Arc` internally; share one instance across crawler threads.
pub struct Network {
    study: SeedTree,
    servers: HashMap<DomainName, Arc<dyn OriginServer>>,
    /// Domains that are *known not to resolve* — exploit kits redirect here
    /// when they detect an analysis environment (cloaking, §4.1's "redirects
    /// to NX domains" heuristic).
    nx_domains: Vec<DomainName>,
}

impl Network {
    /// Creates an empty network rooted at the study seed.
    pub fn new(study: SeedTree) -> Self {
        Network {
            study,
            servers: HashMap::new(),
            nx_domains: Vec::new(),
        }
    }

    /// Registers a server for `domain`. Replaces any existing registration.
    pub fn register(&mut self, domain: DomainName, server: Arc<dyn OriginServer>) {
        self.servers.insert(domain, server);
    }

    /// Registers a domain that deliberately fails to resolve.
    pub fn register_nx(&mut self, domain: DomainName) {
        self.nx_domains.push(domain);
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// True when the domain resolves to a server.
    pub fn resolves(&self, domain: &DomainName) -> bool {
        self.servers.contains_key(domain)
    }

    /// Performs a single exchange (no redirect following), recording it.
    pub fn fetch_once(
        &self,
        req: &HttpRequest,
        time: SimTime,
        capture: &mut TrafficCapture,
    ) -> Result<HttpResponse, NetError> {
        let host = match req.url.host() {
            Some(h) => h.clone(),
            None => return Err(NetError::NotFetchable(req.url.clone())),
        };
        match self.servers.get(&host) {
            Some(server) => {
                let mut ctx = ServeCtx::for_request(self.study, time, req);
                let resp = server.handle(req, &mut ctx);
                capture.record(time, req, &resp);
                Ok(resp)
            }
            None => {
                capture.record_nx(time, req);
                Err(NetError::NxDomain(host))
            }
        }
    }

    /// Fetches `req`, following HTTP redirects up to [`MAX_REDIRECT_HOPS`].
    /// Every hop is recorded in `capture`.
    pub fn fetch(
        &self,
        req: &HttpRequest,
        time: SimTime,
        capture: &mut TrafficCapture,
    ) -> Result<FetchOutcome, NetError> {
        let mut current = req.clone();
        let mut hops = 0;
        loop {
            let resp = self.fetch_once(&current, time, capture)?;
            if !resp.status.is_redirect() {
                return Ok(FetchOutcome {
                    response: resp,
                    final_url: current.url,
                    hops,
                });
            }
            let location = resp
                .location
                .clone()
                .ok_or_else(|| NetError::BadRedirect(current.url.clone()))?;
            hops += 1;
            if hops > MAX_REDIRECT_HOPS {
                return Err(NetError::TooManyRedirects(current.url.clone()));
            }
            // Referrer of a redirect hop is the redirecting URL.
            current = HttpRequest {
                method: current.method,
                url: location,
                referrer: Some(current.url),
                user_agent: current.user_agent,
                cookies: current.cookies,
            };
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("servers", &self.servers.len())
            .field("nx_domains", &self.nx_domains.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Body;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn domain(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn html_server(text: &'static str) -> Arc<dyn OriginServer> {
        Arc::new(move |_req: &HttpRequest, _ctx: &mut ServeCtx| {
            HttpResponse::ok(Body::Html(text.to_string()))
        })
    }

    #[test]
    fn direct_fetch() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(domain("a.com"), html_server("<p>hi</p>"));
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://a.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert_eq!(outcome.hops, 0);
        assert_eq!(outcome.response.body.as_html(), Some("<p>hi</p>"));
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn nxdomain_recorded_and_errors() {
        let net = Network::new(SeedTree::new(1));
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://ghost.com/")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NxDomain(d) if d.as_str() == "ghost.com"));
        assert!(cap.exchanges()[0].nx_domain);
    }

    #[test]
    fn redirects_followed_and_recorded() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("start.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::redirect(Url::parse("http://mid.com/").unwrap())
            }),
        );
        net.register(
            domain("mid.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::moved(Url::parse("http://end.com/").unwrap())
            }),
        );
        net.register(domain("end.com"), html_server("done"));
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://start.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert_eq!(outcome.hops, 2);
        assert_eq!(outcome.final_url, url("http://end.com/"));
        assert_eq!(cap.len(), 3);
        // Referrer of each hop is the redirecting URL.
        assert_eq!(cap.exchanges()[1].referrer, Some(url("http://start.com/")));
        assert_eq!(cap.exchanges()[2].referrer, Some(url("http://mid.com/")));
        // Chain reconstruction sees the full chain.
        assert_eq!(cap.redirect_chains()[0].len(), 3);
    }

    #[test]
    fn redirect_loop_capped() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("loop.com"),
            Arc::new(|req: &HttpRequest, _ctx: &mut ServeCtx| {
                // Bounce between two paths forever.
                let next = if req.url.path() == "/a" { "/b" } else { "/a" };
                HttpResponse::redirect(Url::from_parts(
                    malvert_types::url::Scheme::Http,
                    "loop.com",
                    next,
                ))
            }),
        );
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://loop.com/a")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects(_)));
        assert_eq!(cap.len() as u32, MAX_REDIRECT_HOPS + 1);
    }

    #[test]
    fn redirect_into_nxdomain_fails_with_capture() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("cloaker.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::redirect(Url::parse("http://definitely-gone.biz/").unwrap())
            }),
        );
        net.register_nx(domain("definitely-gone.biz"));
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://cloaker.com/")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NxDomain(_)));
        // Both the redirect and the failed resolution are visible.
        assert_eq!(cap.len(), 2);
        assert!(cap.exchanges()[1].nx_domain);
    }

    #[test]
    fn about_urls_not_fetchable() {
        let net = Network::new(SeedTree::new(1));
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch_once(&HttpRequest::get(Url::about_blank()), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NotFetchable(_)));
    }

    #[test]
    fn server_rng_varies_with_time() {
        // A server that serves a random number; two refreshes must differ
        // (deterministically).
        let mut net = Network::new(SeedTree::new(9));
        net.register(
            domain("rand.com"),
            Arc::new(|_req: &HttpRequest, ctx: &mut ServeCtx| {
                HttpResponse::ok(Body::Html(format!("{}", ctx.rng.below(1_000_000))))
            }),
        );
        let mut cap = TrafficCapture::new();
        let get = |net: &Network, t: SimTime, cap: &mut TrafficCapture| {
            net.fetch(&HttpRequest::get(url("http://rand.com/")), t, cap)
                .unwrap()
                .response
                .body
                .as_html()
                .unwrap()
                .to_string()
        };
        let a0 = get(&net, SimTime::at(0, 0), &mut cap);
        let a1 = get(&net, SimTime::at(0, 1), &mut cap);
        let a0_again = get(&net, SimTime::at(0, 0), &mut cap);
        assert_ne!(a0, a1);
        assert_eq!(a0, a0_again);
    }
}
