//! The simulated network: domain routing, DNS failures, redirect following,
//! and seed-driven fault injection.

use crate::capture::TrafficCapture;
use crate::fault::{corrupt_html, truncate_len, FaultKind, FaultPlan, FaultProfile};
use crate::message::{Body, HttpRequest, HttpResponse, StatusCode};
use crate::server::{OriginServer, ServeCtx};
use malvert_types::rng::SeedTree;
use malvert_types::{CrawlError, CrawlErrorClass, DomainName, SimTime, Url};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors produced by [`Network::fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The host has no registered server and is not a registered NX domain.
    NxDomain(DomainName),
    /// An injected transient resolver flap (the host exists; a retry can
    /// recover). Only fault injection produces this variant.
    DnsFlap(DomainName),
    /// An injected connection reset. Only fault injection produces this.
    ConnectionReset(Url),
    /// An injected timeout (slow host). Only fault injection produces this.
    Timeout(Url),
    /// A redirect chain exceeded the hop limit.
    TooManyRedirects(Url),
    /// A redirect chain revisited a URL it already passed through.
    RedirectCycle(Url),
    /// A redirect response carried no usable `Location`.
    BadRedirect(Url),
    /// The URL has no host (`about:` URLs are not fetchable).
    NotFetchable(Url),
}

impl NetError {
    /// Maps the error into the crawl-error taxonomy.
    pub fn class(&self) -> CrawlErrorClass {
        match self {
            NetError::NxDomain(_) | NetError::DnsFlap(_) => CrawlErrorClass::Dns,
            NetError::ConnectionReset(_) => CrawlErrorClass::ConnectionReset,
            NetError::Timeout(_) => CrawlErrorClass::Timeout,
            NetError::TooManyRedirects(_)
            | NetError::RedirectCycle(_)
            | NetError::BadRedirect(_)
            | NetError::NotFetchable(_) => CrawlErrorClass::Redirect,
        }
    }

    /// True for errors a retry can recover from. Only injected transient
    /// faults are retryable: a genuine NXDOMAIN or redirect failure is
    /// permanent, and retrying it would change fault-free runs.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::DnsFlap(_) | NetError::ConnectionReset(_) | NetError::Timeout(_)
        )
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NxDomain(d) => write!(f, "NXDOMAIN: {d}"),
            NetError::DnsFlap(d) => write!(f, "transient DNS flap resolving {d}"),
            NetError::ConnectionReset(u) => write!(f, "connection reset fetching {u}"),
            NetError::Timeout(u) => write!(f, "timed out fetching {u}"),
            NetError::TooManyRedirects(u) => write!(f, "too many redirects fetching {u}"),
            NetError::RedirectCycle(u) => write!(f, "redirect cycle revisiting {u}"),
            NetError::BadRedirect(u) => write!(f, "redirect without Location at {u}"),
            NetError::NotFetchable(u) => write!(f, "URL is not fetchable: {u}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The result of a redirect-following fetch: the final response plus the URL
/// it was served from.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Final (non-redirect) response.
    pub response: HttpResponse,
    /// URL the final response came from.
    pub final_url: Url,
    /// Number of redirect hops followed (0 = direct).
    pub hops: u32,
    /// Faults injected into the hops of this fetch, in hop order. Empty in
    /// fault-free runs.
    pub injected_faults: Vec<FaultKind>,
}

/// Per-fetch error log filled by [`Network::fetch_logged`]: every classified
/// failure met along the redirect chain (including ones a retry recovered
/// from) plus the number of retries spent.
#[derive(Debug, Clone, Default)]
pub struct FetchLog {
    /// Classified failures, in occurrence order.
    pub errors: Vec<CrawlError>,
    /// Fetch attempts beyond the first, summed over all hops.
    pub retries: u32,
}

/// Maximum redirect hops followed before giving up. The paper observed
/// arbitration chains of up to 30 auctions (§4.3); browsers commonly cap at
/// 20 — we use a cap comfortably above the longest simulated chain so the
/// measurement sees full chains, while still bounding loops.
pub const MAX_REDIRECT_HOPS: u32 = 48;

/// The simulated Internet: a routing table from domains to origin servers.
///
/// Cloneable via `Arc` internally; share one instance across crawler threads.
pub struct Network {
    study: SeedTree,
    servers: HashMap<DomainName, Arc<dyn OriginServer>>,
    /// Domains that are *known not to resolve* — exploit kits redirect here
    /// when they detect an analysis environment (cloaking, §4.1's "redirects
    /// to NX domains" heuristic).
    nx_domains: Vec<DomainName>,
    /// Seed-driven fault injection profile; `None` injects nothing.
    faults: Option<FaultProfile>,
}

impl Network {
    /// Creates an empty network rooted at the study seed.
    pub fn new(study: SeedTree) -> Self {
        Network {
            study,
            servers: HashMap::new(),
            nx_domains: Vec::new(),
            faults: None,
        }
    }

    /// Attaches (or clears) the fault-injection profile. With `None` the
    /// network draws nothing from the fault branch and behaves exactly as a
    /// fault-free substrate.
    pub fn set_fault_profile(&mut self, profile: Option<FaultProfile>) {
        self.faults = profile;
    }

    /// The active fault profile, when one is attached.
    pub fn fault_profile(&self) -> Option<&FaultProfile> {
        self.faults.as_ref()
    }

    /// Registers a server for `domain`. Replaces any existing registration.
    pub fn register(&mut self, domain: DomainName, server: Arc<dyn OriginServer>) {
        self.servers.insert(domain, server);
    }

    /// Registers a domain that deliberately fails to resolve.
    pub fn register_nx(&mut self, domain: DomainName) {
        self.nx_domains.push(domain);
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// True when the domain resolves to a server.
    pub fn resolves(&self, domain: &DomainName) -> bool {
        self.servers.contains_key(domain)
    }

    /// Performs a single exchange (no redirect following), recording it.
    pub fn fetch_once(
        &self,
        req: &HttpRequest,
        time: SimTime,
        capture: &mut TrafficCapture,
    ) -> Result<HttpResponse, NetError> {
        self.fetch_once_attempt(req, time, 0, capture)
            .map(|(resp, _)| resp)
    }

    /// Performs one exchange at a given attempt number, recording it.
    ///
    /// The attempt number only matters under fault injection: the request's
    /// [`FaultPlan`] is a pure function of `(seed, time, url)`, and transient
    /// faults fail attempts `0..flaps`, so a retry loop deterministically
    /// recovers. Returns the response plus the fault injected into it (for
    /// damaged-but-delivered responses: injected 5xx, truncation, malformed
    /// HTML).
    pub fn fetch_once_attempt(
        &self,
        req: &HttpRequest,
        time: SimTime,
        attempt: u32,
        capture: &mut TrafficCapture,
    ) -> Result<(HttpResponse, Option<FaultKind>), NetError> {
        let host = match req.url.host() {
            Some(h) => h.clone(),
            None => return Err(NetError::NotFetchable(req.url.clone())),
        };
        let plan = match &self.faults {
            Some(profile) => profile.plan_for(self.study, time, &req.url),
            None => FaultPlan::CLEAN,
        };
        // Transient faults only strike hosts that actually exist; genuine
        // NXDOMAIN stays NXDOMAIN.
        if self.servers.contains_key(&host) && plan.fails_attempt(attempt) {
            match plan.kind {
                Some(FaultKind::NxFlap) => {
                    capture.record_nx(time, req);
                    return Err(NetError::DnsFlap(host));
                }
                Some(FaultKind::ConnectionReset) => {
                    capture.record_fault(time, req, CrawlErrorClass::ConnectionReset);
                    return Err(NetError::ConnectionReset(req.url.clone()));
                }
                Some(FaultKind::Timeout) => {
                    capture.record_fault(time, req, CrawlErrorClass::Timeout);
                    return Err(NetError::Timeout(req.url.clone()));
                }
                Some(FaultKind::ServerError) => {
                    let resp = HttpResponse {
                        status: StatusCode::INTERNAL_ERROR,
                        body: Body::Empty,
                        location: None,
                        location_ref: None,
                        attachment_filename: None,
                        set_cookies: Vec::new(),
                    };
                    capture.record(time, req, &resp);
                    return Ok((resp, Some(FaultKind::ServerError)));
                }
                // `fails_attempt` is only true for transient kinds.
                _ => {}
            }
        }
        match self.servers.get(&host) {
            Some(server) => {
                let mut ctx = ServeCtx::for_request(self.study, time, req);
                let mut resp = server.handle(req, &mut ctx);
                // Resolve a relative `Location` reference against the
                // request URL; an unresolvable reference leaves `location`
                // empty and surfaces as `BadRedirect` in `fetch`.
                if resp.location.is_none() {
                    if let Some(reference) = resp.location_ref.take() {
                        resp.location = req.url.join(&reference).ok();
                    }
                }
                let injected = match plan.kind {
                    Some(FaultKind::TruncatedBody) if !resp.body.is_empty() => {
                        truncate_body(&mut resp.body, plan.corruption_seed);
                        Some(FaultKind::TruncatedBody)
                    }
                    Some(FaultKind::MalformedHtml) => match resp.body.as_html() {
                        Some(html) => {
                            let damaged = corrupt_html(html, plan.corruption_seed);
                            resp.body = Body::Html(damaged);
                            Some(FaultKind::MalformedHtml)
                        }
                        None => None,
                    },
                    _ => None,
                };
                capture.record(time, req, &resp);
                Ok((resp, injected))
            }
            None => {
                capture.record_nx(time, req);
                Err(NetError::NxDomain(host))
            }
        }
    }

    /// Fetches `req`, following HTTP redirects up to [`MAX_REDIRECT_HOPS`].
    /// Every hop is recorded in `capture`.
    pub fn fetch(
        &self,
        req: &HttpRequest,
        time: SimTime,
        capture: &mut TrafficCapture,
    ) -> Result<FetchOutcome, NetError> {
        let mut log = FetchLog::default();
        self.fetch_logged(req, time, capture, 0, &mut log)
    }

    /// Fetches `req` with per-hop retry and a classified error log.
    ///
    /// Up to `max_retries` extra attempts are spent per hop, and only on
    /// injected transient faults (DNS flaps, resets, timeouts, injected
    /// 5xx) — so with no fault profile attached this behaves exactly like
    /// [`Network::fetch`]. Every failure met along the chain, recovered or
    /// not, is appended to `log`.
    pub fn fetch_logged(
        &self,
        req: &HttpRequest,
        time: SimTime,
        capture: &mut TrafficCapture,
        max_retries: u32,
        log: &mut FetchLog,
    ) -> Result<FetchOutcome, NetError> {
        let mut current = req.clone();
        let mut hops = 0;
        let mut injected_faults = Vec::new();
        let mut visited: Vec<Url> = Vec::new();
        loop {
            let mut attempt = 0u32;
            let mut last_class = None;
            let (resp, tag) = loop {
                match self.fetch_once_attempt(&current, time, attempt, capture) {
                    Ok((resp, tag)) => {
                        if matches!(tag, Some(FaultKind::ServerError)) && attempt < max_retries {
                            log.retries += 1;
                            last_class = Some(CrawlErrorClass::Http5xx);
                            attempt += 1;
                            continue;
                        }
                        // A still-500 response after exhausted retries is
                        // logged below as damage, not as a recovery.
                        if attempt > 0 && !matches!(tag, Some(FaultKind::ServerError)) {
                            log.errors.push(CrawlError {
                                class: last_class.unwrap_or(CrawlErrorClass::Timeout),
                                url: current.url.clone(),
                                attempts: attempt + 1,
                                recovered: true,
                            });
                        }
                        break (resp, tag);
                    }
                    Err(err) => {
                        let class = err.class();
                        if err.is_retryable() && attempt < max_retries {
                            log.retries += 1;
                            last_class = Some(class);
                            attempt += 1;
                            continue;
                        }
                        log.errors.push(CrawlError {
                            class,
                            url: current.url.clone(),
                            attempts: attempt + 1,
                            recovered: false,
                        });
                        return Err(err);
                    }
                }
            };
            if let Some(kind) = tag {
                injected_faults.push(kind);
            }
            // Damaged-but-delivered responses degrade rather than fail;
            // classify them so the visit can account for the damage.
            let damage_class = match tag {
                Some(FaultKind::TruncatedBody) => Some(CrawlErrorClass::TruncatedBody),
                Some(FaultKind::MalformedHtml) => Some(CrawlErrorClass::MalformedHtml),
                _ if resp.status.0 >= 500 => Some(CrawlErrorClass::Http5xx),
                _ => None,
            };
            if let Some(class) = damage_class {
                log.errors.push(CrawlError {
                    class,
                    url: current.url.clone(),
                    attempts: attempt + 1,
                    recovered: false,
                });
            }
            if !resp.status.is_redirect() {
                return Ok(FetchOutcome {
                    response: resp,
                    final_url: current.url,
                    hops,
                    injected_faults,
                });
            }
            let location = match resp.location.clone() {
                Some(location) => location,
                None => {
                    log.errors.push(CrawlError {
                        class: CrawlErrorClass::Redirect,
                        url: current.url.clone(),
                        attempts: attempt + 1,
                        recovered: false,
                    });
                    return Err(NetError::BadRedirect(current.url.clone()));
                }
            };
            hops += 1;
            if hops > MAX_REDIRECT_HOPS {
                log.errors.push(CrawlError {
                    class: CrawlErrorClass::Redirect,
                    url: current.url.clone(),
                    attempts: attempt + 1,
                    recovered: false,
                });
                return Err(NetError::TooManyRedirects(current.url.clone()));
            }
            visited.push(current.url.clone());
            if visited.contains(&location) {
                log.errors.push(CrawlError {
                    class: CrawlErrorClass::Redirect,
                    url: location.clone(),
                    attempts: attempt + 1,
                    recovered: false,
                });
                return Err(NetError::RedirectCycle(location));
            }
            // Referrer of a redirect hop is the redirecting URL.
            current = HttpRequest {
                method: current.method,
                url: location,
                referrer: Some(current.url),
                user_agent: current.user_agent,
                cookies: current.cookies,
            };
        }
    }
}

/// Truncates a body to a deterministic fraction of its length, snapping text
/// bodies down to a char boundary.
fn truncate_body(body: &mut Body, corruption_seed: u64) {
    match body {
        Body::Empty => {}
        Body::Html(s) | Body::Script(s) => {
            let mut cut = truncate_len(s.len(), corruption_seed);
            while cut > 0 && !s.is_char_boundary(cut) {
                cut -= 1;
            }
            s.truncate(cut);
        }
        Body::Image(b) | Body::Download(b) => {
            let cut = truncate_len(b.len(), corruption_seed);
            *b = b.slice(..cut);
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("servers", &self.servers.len())
            .field("nx_domains", &self.nx_domains.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Body;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn domain(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn html_server(text: &'static str) -> Arc<dyn OriginServer> {
        Arc::new(move |_req: &HttpRequest, _ctx: &mut ServeCtx| {
            HttpResponse::ok(Body::Html(text.to_string()))
        })
    }

    #[test]
    fn direct_fetch() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(domain("a.com"), html_server("<p>hi</p>"));
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://a.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert_eq!(outcome.hops, 0);
        assert_eq!(outcome.response.body.as_html(), Some("<p>hi</p>"));
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn nxdomain_recorded_and_errors() {
        let net = Network::new(SeedTree::new(1));
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://ghost.com/")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NxDomain(d) if d.as_str() == "ghost.com"));
        assert!(cap.exchanges()[0].nx_domain);
    }

    #[test]
    fn redirects_followed_and_recorded() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("start.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::redirect(Url::parse("http://mid.com/").unwrap())
            }),
        );
        net.register(
            domain("mid.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::moved(Url::parse("http://end.com/").unwrap())
            }),
        );
        net.register(domain("end.com"), html_server("done"));
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://start.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert_eq!(outcome.hops, 2);
        assert_eq!(outcome.final_url, url("http://end.com/"));
        assert_eq!(cap.len(), 3);
        // Referrer of each hop is the redirecting URL.
        assert_eq!(cap.exchanges()[1].referrer, Some(url("http://start.com/")));
        assert_eq!(cap.exchanges()[2].referrer, Some(url("http://mid.com/")));
        // Chain reconstruction sees the full chain.
        assert_eq!(cap.redirect_chains()[0].len(), 3);
    }

    #[test]
    fn redirect_cycle_detected_below_hop_cap() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("loop.com"),
            Arc::new(|req: &HttpRequest, _ctx: &mut ServeCtx| {
                // Bounce between two paths forever.
                let next = if req.url.path() == "/a" { "/b" } else { "/a" };
                HttpResponse::redirect(Url::from_parts(
                    malvert_types::url::Scheme::Http,
                    "loop.com",
                    next,
                ))
            }),
        );
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://loop.com/a")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        // The A→B→A cycle is caught at the first revisit, long before the
        // hop cap: only the two distinct URLs were ever fetched.
        assert!(matches!(err, NetError::RedirectCycle(u) if u == url("http://loop.com/a")));
        assert_eq!(cap.len(), 2);
    }

    #[test]
    fn non_repeating_redirect_chain_hits_hop_cap() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("deep.com"),
            Arc::new(|req: &HttpRequest, _ctx: &mut ServeCtx| {
                // Every hop goes to a fresh URL, so cycle detection never
                // fires and the hop cap must.
                let n: u32 = req.url.query_param("n").and_then(|v| v.parse().ok()).unwrap_or(0);
                HttpResponse::redirect(
                    Url::from_parts(malvert_types::url::Scheme::Http, "deep.com", "/r")
                        .with_query(&format!("n={}", n + 1)),
                )
            }),
        );
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://deep.com/r?n=0")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects(_)));
        assert_eq!(cap.len() as u32, MAX_REDIRECT_HOPS + 1);
    }

    #[test]
    fn redirect_to_non_fetchable_scheme_is_typed() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("weird.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::redirect(Url::about_blank())
            }),
        );
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://weird.com/")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NotFetchable(_)));
        assert_eq!(err.class(), malvert_types::CrawlErrorClass::Redirect);
    }

    #[test]
    fn relative_location_resolved_against_request_url() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("rel.com"),
            Arc::new(|req: &HttpRequest, _ctx: &mut ServeCtx| match req.url.path() {
                "/dir/start" => HttpResponse::redirect_to("../next"),
                "/next" => HttpResponse::ok(Body::Html("arrived".into())),
                other => HttpResponse::redirect_to(&format!("unexpected path {other}")),
            }),
        );
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(
                &HttpRequest::get(url("http://rel.com/dir/start")),
                SimTime::ZERO,
                &mut cap,
            )
            .unwrap();
        assert_eq!(outcome.final_url, url("http://rel.com/next"));
        assert_eq!(outcome.hops, 1);
        // The capture records the already-resolved absolute target, so
        // chain reconstruction works on relative redirects too.
        assert_eq!(cap.exchanges()[0].location, Some(url("http://rel.com/next")));
        assert_eq!(cap.redirect_chains()[0].len(), 2);
    }

    #[test]
    fn unresolvable_relative_location_is_bad_redirect() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("junk.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                // `//` resolves to `http://` — no host, unresolvable.
                HttpResponse::redirect_to("//")
            }),
        );
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://junk.com/")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::BadRedirect(_)));
    }

    #[test]
    fn no_fault_profile_injects_nothing() {
        let mut net = Network::new(SeedTree::new(3));
        net.register(domain("a.com"), html_server("<p>clean</p>"));
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://a.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert!(outcome.injected_faults.is_empty());
        assert_eq!(outcome.response.body.as_html(), Some("<p>clean</p>"));
    }

    #[test]
    fn injected_5xx_recovers_with_retry() {
        let mut net = Network::new(SeedTree::new(5));
        net.register(domain("flappy.com"), html_server("eventually"));
        net.set_fault_profile(Some(FaultProfile {
            server_error: 1.0,
            max_flaps: 1,
            ..FaultProfile::default()
        }));
        // Without retries: a 500 with an injected-fault tag.
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://flappy.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert_eq!(outcome.response.status, StatusCode::INTERNAL_ERROR);
        assert_eq!(outcome.injected_faults, vec![FaultKind::ServerError]);
        // With one retry: the flap clears and the page arrives; the log
        // records the recovered failure.
        let mut cap = TrafficCapture::new();
        let mut log = FetchLog::default();
        let outcome = net
            .fetch_logged(
                &HttpRequest::get(url("http://flappy.com/")),
                SimTime::ZERO,
                &mut cap,
                2,
                &mut log,
            )
            .unwrap();
        assert_eq!(outcome.response.body.as_html(), Some("eventually"));
        assert_eq!(log.retries, 1);
        assert_eq!(log.errors.len(), 1);
        assert_eq!(log.errors[0].class, malvert_types::CrawlErrorClass::Http5xx);
        assert!(log.errors[0].recovered);
        // Both the failed attempt and the successful one were captured.
        assert_eq!(cap.len(), 2);
    }

    #[test]
    fn nx_flap_recovers_but_genuine_nx_is_never_retried() {
        let mut net = Network::new(SeedTree::new(6));
        net.register(domain("real.com"), html_server("alive"));
        net.set_fault_profile(Some(FaultProfile {
            nx_flap: 1.0,
            max_flaps: 1,
            ..FaultProfile::default()
        }));
        let mut cap = TrafficCapture::new();
        let mut log = FetchLog::default();
        let outcome = net
            .fetch_logged(
                &HttpRequest::get(url("http://real.com/")),
                SimTime::ZERO,
                &mut cap,
                2,
                &mut log,
            )
            .unwrap();
        assert_eq!(outcome.response.body.as_html(), Some("alive"));
        assert_eq!(log.retries, 1);
        assert!(log.errors[0].recovered);
        assert_eq!(log.errors[0].class, malvert_types::CrawlErrorClass::Dns);
        // The flapped attempt is visible as an NX record.
        assert!(cap.exchanges()[0].nx_domain);
        // A host that genuinely does not exist fails on the first attempt —
        // no retry budget is spent on permanent failures.
        let mut log = FetchLog::default();
        let err = net
            .fetch_logged(
                &HttpRequest::get(url("http://never-was.com/")),
                SimTime::ZERO,
                &mut cap,
                2,
                &mut log,
            )
            .unwrap_err();
        assert!(matches!(err, NetError::NxDomain(_)));
        assert_eq!(log.retries, 0);
        assert_eq!(log.errors[0].attempts, 1);
        assert!(!log.errors[0].recovered);
    }

    #[test]
    fn truncation_shortens_the_recorded_body() {
        let full = "<html><body>0123456789012345678901234567890123456789</body></html>";
        let mut net = Network::new(SeedTree::new(7));
        net.register(domain("cut.com"), html_server(full));
        net.set_fault_profile(Some(FaultProfile {
            truncated_body: 1.0,
            ..FaultProfile::default()
        }));
        let mut cap = TrafficCapture::new();
        let outcome = net
            .fetch(&HttpRequest::get(url("http://cut.com/")), SimTime::ZERO, &mut cap)
            .unwrap();
        assert_eq!(outcome.injected_faults, vec![FaultKind::TruncatedBody]);
        let body = outcome.response.body.as_html().unwrap();
        assert!(body.len() < full.len(), "body was not truncated");
        assert!(full.starts_with(body), "truncation must keep a prefix");
        assert_eq!(cap.exchanges()[0].body_len, body.len());
    }

    #[test]
    fn fault_injection_is_deterministic_per_request() {
        let build = || {
            let mut net = Network::new(SeedTree::new(11));
            net.register(domain("h.com"), html_server("<p>page</p>"));
            net.set_fault_profile(Some(FaultProfile::heavy()));
            net
        };
        let (a, b) = (build(), build());
        for i in 0..40 {
            let u = url(&format!("http://h.com/page?i={i}"));
            let mut cap_a = TrafficCapture::new();
            let mut cap_b = TrafficCapture::new();
            let ra = a.fetch(&HttpRequest::get(u.clone()), SimTime::at(2, 1), &mut cap_a);
            let rb = b.fetch(&HttpRequest::get(u), SimTime::at(2, 1), &mut cap_b);
            match (ra, rb) {
                (Ok(oa), Ok(ob)) => {
                    assert_eq!(oa.injected_faults, ob.injected_faults);
                    assert_eq!(oa.response, ob.response);
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                (ra, rb) => panic!("divergent outcomes: {ra:?} vs {rb:?}"),
            }
            assert_eq!(cap_a.exchanges(), cap_b.exchanges());
        }
    }

    #[test]
    fn redirect_into_nxdomain_fails_with_capture() {
        let mut net = Network::new(SeedTree::new(1));
        net.register(
            domain("cloaker.com"),
            Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
                HttpResponse::redirect(Url::parse("http://definitely-gone.biz/").unwrap())
            }),
        );
        net.register_nx(domain("definitely-gone.biz"));
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch(&HttpRequest::get(url("http://cloaker.com/")), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NxDomain(_)));
        // Both the redirect and the failed resolution are visible.
        assert_eq!(cap.len(), 2);
        assert!(cap.exchanges()[1].nx_domain);
    }

    #[test]
    fn about_urls_not_fetchable() {
        let net = Network::new(SeedTree::new(1));
        let mut cap = TrafficCapture::new();
        let err = net
            .fetch_once(&HttpRequest::get(Url::about_blank()), SimTime::ZERO, &mut cap)
            .unwrap_err();
        assert!(matches!(err, NetError::NotFetchable(_)));
    }

    #[test]
    fn server_rng_varies_with_time() {
        // A server that serves a random number; two refreshes must differ
        // (deterministically).
        let mut net = Network::new(SeedTree::new(9));
        net.register(
            domain("rand.com"),
            Arc::new(|_req: &HttpRequest, ctx: &mut ServeCtx| {
                HttpResponse::ok(Body::Html(format!("{}", ctx.rng.below(1_000_000))))
            }),
        );
        let mut cap = TrafficCapture::new();
        let get = |net: &Network, t: SimTime, cap: &mut TrafficCapture| {
            net.fetch(&HttpRequest::get(url("http://rand.com/")), t, cap)
                .unwrap()
                .response
                .body
                .as_html()
                .unwrap()
                .to_string()
        };
        let a0 = get(&net, SimTime::at(0, 0), &mut cap);
        let a1 = get(&net, SimTime::at(0, 1), &mut cap);
        let a0_again = get(&net, SimTime::at(0, 0), &mut cap);
        assert_ne!(a0, a1);
        assert_eq!(a0, a0_again);
    }
}
