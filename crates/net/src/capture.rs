//! HAR-style traffic capture.
//!
//! One [`TrafficCapture`] accumulates every HTTP exchange a page load
//! performs: top-level navigation, iframe loads, script/image subresources,
//! and — crucially — every hop of every redirect chain. The oracle's
//! redirection heuristics (§4.1) and the arbitration-chain analysis (§4.3)
//! both read this log.

use crate::message::{HttpRequest, HttpResponse, Method, StatusCode};
use malvert_types::{CrawlErrorClass, SimTime, Url};

/// One recorded request/response pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedExchange {
    /// When the exchange happened.
    pub time: SimTime,
    /// Request method.
    pub method: Method,
    /// Requested URL.
    pub url: Url,
    /// Referrer, when present.
    pub referrer: Option<Url>,
    /// Response status (None when resolution failed, e.g. NXDOMAIN).
    pub status: Option<StatusCode>,
    /// Redirect target, for 3xx responses.
    pub location: Option<Url>,
    /// Response content type.
    pub content_type: Option<String>,
    /// Response body size in bytes.
    pub body_len: usize,
    /// True when the response forced a download (`Content-Disposition`).
    pub is_download: bool,
    /// DNS failure marker: the requested host did not resolve.
    pub nx_domain: bool,
    /// Transport-failure marker for exchanges that produced no response
    /// (connection reset, timeout). Distinct from `nx_domain` so the
    /// oracle's NX-redirect cloaking heuristic is not polluted by injected
    /// transport faults.
    pub fault: Option<CrawlErrorClass>,
}

/// An append-only log of exchanges for one page load (or one oracle run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficCapture {
    exchanges: Vec<CapturedExchange>,
}

impl TrafficCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed exchange.
    pub fn record(&mut self, time: SimTime, req: &HttpRequest, resp: &HttpResponse) {
        self.exchanges.push(CapturedExchange {
            time,
            method: req.method,
            url: req.url.clone(),
            referrer: req.referrer.clone(),
            status: Some(resp.status),
            location: resp.location.clone(),
            content_type: Some(resp.body.content_type().to_string()),
            body_len: resp.body.len(),
            is_download: resp.attachment_filename.is_some(),
            nx_domain: false,
            fault: None,
        });
    }

    /// Records a failed resolution (NXDOMAIN).
    pub fn record_nx(&mut self, time: SimTime, req: &HttpRequest) {
        self.exchanges.push(CapturedExchange {
            time,
            method: req.method,
            url: req.url.clone(),
            referrer: req.referrer.clone(),
            status: None,
            location: None,
            content_type: None,
            body_len: 0,
            is_download: false,
            nx_domain: true,
            fault: None,
        });
    }

    /// Records a transport failure that produced no response (connection
    /// reset, timeout). The host is still visible in [`Self::hosts`] — it
    /// was contacted — but the exchange carries no status and is marked
    /// with the failure class.
    pub fn record_fault(&mut self, time: SimTime, req: &HttpRequest, class: CrawlErrorClass) {
        self.exchanges.push(CapturedExchange {
            time,
            method: req.method,
            url: req.url.clone(),
            referrer: req.referrer.clone(),
            status: None,
            location: None,
            content_type: None,
            body_len: 0,
            is_download: false,
            nx_domain: false,
            fault: Some(class),
        });
    }

    /// All exchanges, in request order.
    pub fn exchanges(&self) -> &[CapturedExchange] {
        &self.exchanges
    }

    /// Number of exchanges.
    pub fn len(&self) -> usize {
        self.exchanges.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.exchanges.is_empty()
    }

    /// Appends all exchanges of `other` (used when merging iframe traffic
    /// into the page capture).
    pub fn absorb(&mut self, other: TrafficCapture) {
        self.exchanges.extend(other.exchanges);
    }

    /// Iterates the distinct hosts contacted, in first-contact order.
    pub fn hosts(&self) -> Vec<&malvert_types::DomainName> {
        let mut seen = Vec::new();
        for e in &self.exchanges {
            if let Some(host) = e.url.host() {
                if !seen.contains(&host) {
                    seen.push(host);
                }
            }
        }
        seen
    }

    /// Serializes the capture to a HAR-flavoured JSON document (a subset of
    /// the HTTP Archive 1.2 schema: `log.entries[]` with request/response
    /// objects). Hand-rolled writer — the capture's field set is small and
    /// fixed, and this keeps `malvert-net` dependency-free.
    pub fn to_har_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from(
            "{\"log\":{\"version\":\"1.2\",\"creator\":{\"name\":\"malvert-net\",\"version\":\"0.1\"},\"entries\":[",
        );
        for (i, e) in self.exchanges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"startedDateTime\":\"{}\",\"request\":{{\"method\":\"{}\",\"url\":\"{}\"",
                e.time,
                e.method.as_str(),
                esc(&e.url.to_string())
            ));
            if let Some(r) = &e.referrer {
                out.push_str(&format!(
                    ",\"headers\":[{{\"name\":\"Referer\",\"value\":\"{}\"}}]",
                    esc(&r.to_string())
                ));
            } else {
                out.push_str(",\"headers\":[]");
            }
            out.push_str("},\"response\":{");
            match e.status {
                Some(status) => {
                    out.push_str(&format!(
                        "\"status\":{},\"content\":{{\"size\":{},\"mimeType\":\"{}\"}}",
                        status.0,
                        e.body_len,
                        esc(e.content_type.as_deref().unwrap_or(""))
                    ));
                    if let Some(loc) = &e.location {
                        out.push_str(&format!(",\"redirectURL\":\"{}\"", esc(&loc.to_string())));
                    }
                }
                None => {
                    let label = if e.nx_domain {
                        "NXDOMAIN"
                    } else {
                        match e.fault {
                            Some(CrawlErrorClass::ConnectionReset) => "CONNECTION_RESET",
                            Some(CrawlErrorClass::Timeout) => "TIMEOUT",
                            _ => "FAILED",
                        }
                    };
                    out.push_str(&format!("\"status\":0,\"_error\":\"{label}\""));
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}}");
        out
    }

    /// Extracts the redirect chains in this capture: maximal sequences of
    /// exchanges where each hop's `location` is the next hop's `url`.
    pub fn redirect_chains(&self) -> Vec<Vec<&CapturedExchange>> {
        let mut chains: Vec<Vec<&CapturedExchange>> = Vec::new();
        let mut used = vec![false; self.exchanges.len()];
        for i in 0..self.exchanges.len() {
            if used[i] {
                continue;
            }
            let e = &self.exchanges[i];
            if e.location.is_none() {
                continue;
            }
            // Start of a chain: walk forward greedily.
            let mut chain = vec![e];
            used[i] = true;
            let mut cursor = e;
            'extend: while let Some(target) = &cursor.location {
                for (j, candidate) in self.exchanges.iter().enumerate().skip(i + 1) {
                    if !used[j] && candidate.url == *target {
                        chain.push(candidate);
                        used[j] = true;
                        cursor = candidate;
                        continue 'extend;
                    }
                }
                break;
            }
            chains.push(chain);
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Body, HttpRequest, HttpResponse};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn record_and_inspect() {
        let mut cap = TrafficCapture::new();
        let req = HttpRequest::get(url("http://a.com/"));
        cap.record(SimTime::ZERO, &req, &HttpResponse::ok(Body::Html("<p>".into())));
        assert_eq!(cap.len(), 1);
        let e = &cap.exchanges()[0];
        assert_eq!(e.status, Some(StatusCode::OK));
        assert_eq!(e.content_type.as_deref(), Some("text/html"));
        assert_eq!(e.body_len, 3);
        assert!(!e.nx_domain);
    }

    #[test]
    fn record_nx_marks_failure() {
        let mut cap = TrafficCapture::new();
        let req = HttpRequest::get(url("http://gone.example/"));
        cap.record_nx(SimTime::ZERO, &req);
        assert!(cap.exchanges()[0].nx_domain);
        assert_eq!(cap.exchanges()[0].status, None);
    }

    #[test]
    fn record_fault_marks_transport_failure() {
        let mut cap = TrafficCapture::new();
        let req = HttpRequest::get(url("http://reset.example/"));
        cap.record_fault(SimTime::ZERO, &req, CrawlErrorClass::ConnectionReset);
        let e = &cap.exchanges()[0];
        assert_eq!(e.status, None);
        assert!(!e.nx_domain, "transport faults must not look like NXDOMAIN");
        assert_eq!(e.fault, Some(CrawlErrorClass::ConnectionReset));
        // The contacted host is still visible.
        assert_eq!(cap.hosts()[0].as_str(), "reset.example");
        let har = cap.to_har_json();
        assert!(har.contains("\"_error\":\"CONNECTION_RESET\""));
    }

    #[test]
    fn hosts_dedup_in_order() {
        let mut cap = TrafficCapture::new();
        for u in ["http://a.com/1", "http://b.com/", "http://a.com/2"] {
            cap.record(
                SimTime::ZERO,
                &HttpRequest::get(url(u)),
                &HttpResponse::ok(Body::Empty),
            );
        }
        let hosts: Vec<String> = cap.hosts().iter().map(|h| h.to_string()).collect();
        assert_eq!(hosts, vec!["a.com", "b.com"]);
    }

    #[test]
    fn redirect_chain_extraction() {
        let mut cap = TrafficCapture::new();
        // a -> b -> c (200)
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://a.com/")),
            &HttpResponse::redirect(url("http://b.com/")),
        );
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://b.com/")),
            &HttpResponse::redirect(url("http://c.com/")),
        );
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://c.com/")),
            &HttpResponse::ok(Body::Html("x".into())),
        );
        // Unrelated exchange.
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://other.com/")),
            &HttpResponse::ok(Body::Empty),
        );
        let chains = cap.redirect_chains();
        assert_eq!(chains.len(), 1);
        let urls: Vec<String> = chains[0].iter().map(|e| e.url.to_string()).collect();
        assert_eq!(urls, vec!["http://a.com/", "http://b.com/", "http://c.com/"]);
    }

    #[test]
    fn two_disjoint_chains() {
        let mut cap = TrafficCapture::new();
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://a.com/")),
            &HttpResponse::redirect(url("http://a2.com/")),
        );
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://a2.com/")),
            &HttpResponse::ok(Body::Empty),
        );
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://b.com/")),
            &HttpResponse::redirect(url("http://b2.com/")),
        );
        cap.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://b2.com/")),
            &HttpResponse::ok(Body::Empty),
        );
        assert_eq!(cap.redirect_chains().len(), 2);
    }

    #[test]
    fn har_export_well_formed() {
        let mut cap = TrafficCapture::new();
        cap.record(
            SimTime::at(1, 2),
            &HttpRequest::get(url("http://a.com/x?q=\"1\"")),
            &HttpResponse::redirect(url("http://b.com/")),
        );
        cap.record(
            SimTime::at(1, 2),
            &HttpRequest::get(url("http://b.com/")).with_referrer(url("http://a.com/x")),
            &HttpResponse::ok(Body::Html("<p>hi</p>".into())),
        );
        cap.record_nx(SimTime::at(1, 2), &HttpRequest::get(url("http://gone.biz/")));
        let har = cap.to_har_json();
        // Structure sanity.
        assert!(har.starts_with("{\"log\":{"));
        assert!(har.contains("\"redirectURL\":\"http://b.com/\""));
        assert!(har.contains("\"status\":302"));
        assert!(har.contains("\"status\":200"));
        assert!(har.contains("\"_error\":\"NXDOMAIN\""));
        assert!(har.contains("\\\"1\\\""), "quotes escaped in URLs");
        assert!(har.contains("\"Referer\""));
        // Valid JSON (balanced braces at minimum; full parse via serde in
        // the workspace-level integration tests).
        let opens = har.matches('{').count();
        let closes = har.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn har_export_empty_capture() {
        let har = TrafficCapture::new().to_har_json();
        assert!(har.contains("\"entries\":[]"));
    }

    #[test]
    fn absorb_merges() {
        let mut a = TrafficCapture::new();
        let mut b = TrafficCapture::new();
        a.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://a.com/")),
            &HttpResponse::ok(Body::Empty),
        );
        b.record(
            SimTime::ZERO,
            &HttpRequest::get(url("http://b.com/")),
            &HttpResponse::ok(Body::Empty),
        );
        a.absorb(b);
        assert_eq!(a.len(), 2);
    }
}
