//! # malvert-net
//!
//! The simulated HTTP substrate.
//!
//! The paper's crawler "captured all the HTTP traffic during crawling for
//! further investigation" (§3.1) — redirect chains in that traffic are how
//! both the suspicious-redirection heuristics (§4.1) and the ad-arbitration
//! analysis (§4.3) see the world. This crate provides:
//!
//! * [`message`] — request/response types with status codes, headers, and
//!   a typed body.
//! * [`server`] — the [`OriginServer`] trait that every simulated host
//!   (publisher sites, ad networks, exploit servers, payload hosts)
//!   implements, plus a deterministic per-request context.
//! * [`network`] — the [`Network`]: a domain → server routing table with
//!   DNS-style resolution (including NXDOMAIN, which the cloaking heuristics
//!   key on), redirect following, and loop protection.
//! * [`capture`] — HAR-style traffic capture: every exchange a page load
//!   performs, in order, with redirect provenance.
//! * [`fault`] — deterministic, seed-driven fault injection: NXDOMAIN flaps,
//!   5xx, connection resets, timeouts, truncated bodies, and malformed-HTML
//!   corruption, all pure functions of `(seed, time, url)`.
//!
//! Everything is synchronous and deterministic: the "network" is a function
//! of (request, simulated time, seed). Parallelism lives one level up, in the
//! crawler's worker pool, which shares the immutable `Network` across threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod cookies;
pub mod fault;
pub mod message;
pub mod network;
pub mod server;

pub use capture::{CapturedExchange, TrafficCapture};
pub use cookies::CookieJar;
pub use fault::{FaultKind, FaultPlan, FaultProfile};
pub use message::{Body, HttpRequest, HttpResponse, Method, StatusCode};
pub use network::{FetchLog, FetchOutcome, NetError, Network};
pub use server::{OriginServer, ServeCtx};
