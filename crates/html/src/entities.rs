//! Character-entity decoding and text escaping.

/// Named entities we decode. This is the set that occurs in web markup at any
/// meaningful frequency; unknown references are passed through verbatim, which
/// matches browser behaviour for unterminated/unknown entities.
const NAMED: &[(&str, char)] = &[
    ("amp", '&'),
    ("lt", '<'),
    ("gt", '>'),
    ("quot", '"'),
    ("apos", '\''),
    ("nbsp", '\u{a0}'),
    ("copy", '\u{a9}'),
    ("reg", '\u{ae}'),
    ("trade", '\u{2122}'),
    ("hellip", '\u{2026}'),
    ("mdash", '\u{2014}'),
    ("ndash", '\u{2013}'),
    ("lsquo", '\u{2018}'),
    ("rsquo", '\u{2019}'),
    ("ldquo", '\u{201c}'),
    ("rdquo", '\u{201d}'),
    ("laquo", '\u{ab}'),
    ("raquo", '\u{bb}'),
    ("times", '\u{d7}'),
    ("euro", '\u{20ac}'),
    ("pound", '\u{a3}'),
    ("cent", '\u{a2}'),
    ("sect", '\u{a7}'),
    ("middot", '\u{b7}'),
    ("bull", '\u{2022}'),
];

/// Decodes character references in `input`.
///
/// Handles `&name;`, `&#123;`, and `&#x1F;` forms. Anything that does not
/// parse as a reference is copied through unchanged.
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find a terminating semicolon within a reasonable window
        // (byte search: ';' is ASCII, so the boundaries stay valid).
        let window_end = (i + 32).min(bytes.len());
        match bytes[i + 1..window_end].iter().position(|&b| b == b';') {
            Some(rel) => {
                let body = &input[i + 1..i + 1 + rel];
                if let Some(c) = decode_reference(body) {
                    out.push(c);
                    i += rel + 2;
                } else {
                    out.push('&');
                    i += 1;
                }
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn decode_reference(body: &str) -> Option<char> {
    if let Some(num) = body.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        char::from_u32(code)
    } else {
        NAMED.iter().find(|(n, _)| *n == body).map(|(_, c)| *c)
    }
}

/// Escapes text content for serialization (`&`, `<`, `>`).
pub fn escape_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value for serialization within double quotes.
pub fn escape_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '<' => out.push_str("&lt;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_named() {
        assert_eq!(decode("a &amp; b &lt;c&gt;"), "a & b <c>");
        assert_eq!(decode("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
        assert_eq!(decode("&nbsp;"), "\u{a0}");
    }

    #[test]
    fn decode_numeric() {
        assert_eq!(decode("&#65;&#66;"), "AB");
        assert_eq!(decode("&#x41;&#X42;"), "AB");
        assert_eq!(decode("&#x20AC;"), "\u{20ac}");
    }

    #[test]
    fn decode_passthrough() {
        assert_eq!(decode("no entities"), "no entities");
        assert_eq!(decode("&unknown;"), "&unknown;");
        assert_eq!(decode("bare & ampersand"), "bare & ampersand");
        assert_eq!(decode("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode("trailing &"), "trailing &");
    }

    #[test]
    fn decode_invalid_codepoint() {
        // Surrogate — not a valid char.
        assert_eq!(decode("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn decode_preserves_multibyte() {
        assert_eq!(decode("caf\u{e9} &amp; t\u{e9}"), "caf\u{e9} & t\u{e9}");
    }

    #[test]
    fn escape_roundtrip() {
        let raw = "a<b>&\"c\"";
        assert_eq!(decode(&escape_text(raw)), raw);
        assert_eq!(decode(&escape_attr(raw)), raw);
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
    }
}
