//! # malvert-html
//!
//! HTML substrate for the malvertising study: a tokenizer, a
//! forgiving tree builder, an arena-based DOM, and a serializer.
//!
//! The crawler parses every fetched page to find advertisement iframes
//! (§3.1 of the paper), the emulated browser executes `<script>` elements it
//! finds here, and the §4.4 analysis inspects `iframe` attributes for the
//! HTML5 `sandbox` attribute. This crate provides exactly that surface.
//!
//! ## Supported
//!
//! * Start/end tags, attributes (double-, single-, and un-quoted values),
//!   self-closing syntax, comments, doctype.
//! * Void elements (`br`, `img`, `meta`, …) and raw-text elements (`script`,
//!   `style`, `title`, `textarea` — content is not tokenized as markup).
//! * Character-entity decoding for named (`&amp;` set), decimal, and hex
//!   references in text and attribute values.
//! * Mis-nesting tolerance: unmatched end tags are ignored; unclosed elements
//!   are closed at end-of-input, and a small formatting set (`p`, `li`,
//!   `option`) auto-closes on sibling open.
//!
//! ## Not supported
//!
//! * The full HTML5 adoption-agency algorithm, CDATA, processing
//!   instructions, and character encodings other than UTF-8. The simulated
//!   Web does not produce them; real-world fragments containing them parse
//!   with best-effort recovery instead of erroring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod entities;
pub mod parser;
pub mod serialize;
pub mod tokenizer;

pub use dom::{Document, ElementData, Node, NodeId, NodeKind};
pub use parser::parse_document;
pub use serialize::serialize;
pub use tokenizer::{Attribute, Token, Tokenizer};
