//! HTML tokenizer.
//!
//! A hand-written state machine producing a flat token stream. It follows the
//! spirit of the WHATWG tokenizer states that matter in practice (data, tag
//! open, tag name, attribute states, comments, doctype, raw text) without the
//! full error-recovery matrix.

use crate::entities::decode;

/// One attribute on a start tag. Names are lower-cased; values are
/// entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Lower-cased attribute name.
    pub name: String,
    /// Decoded attribute value; empty for valueless attributes.
    pub value: String,
}

/// A token produced by the tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr=...>`; `self_closing` records a trailing `/`.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order (first occurrence of a duplicate wins).
        attrs: Vec<Attribute>,
        /// Whether the tag used self-closing syntax (`<br/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// A run of character data (entity-decoded).
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
    /// `<!DOCTYPE ...>` contents (raw, without the keyword).
    Doctype(String),
}

/// Elements whose content is raw text: markup inside is not tokenized.
pub const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style", "title", "textarea"];

/// The tokenizer. Construct with [`Tokenizer::new`] and iterate.
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// When `Some(tag)`, we are inside a raw-text element and scan for its
    /// matching `</tag`.
    raw_text_until: Option<String>,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            raw_text_until: None,
        }
    }

    /// Tokenizes the whole input into a vector.
    pub fn run(input: &'a str) -> Vec<Token> {
        Tokenizer::new(input).collect()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn next_token(&mut self) -> Option<Token> {
        if self.pos >= self.input.len() {
            return None;
        }
        if let Some(tag) = self.raw_text_until.clone() {
            return Some(self.raw_text(&tag));
        }
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix('<') {
            // Decide the kind of markup declaration.
            if stripped.starts_with("!--") {
                return Some(self.comment());
            }
            if stripped
                .get(..8)
                .is_some_and(|p| p.eq_ignore_ascii_case("!doctype"))
            {
                return Some(self.doctype());
            }
            if stripped.starts_with('/') {
                if let Some(tok) = self.end_tag() {
                    return Some(tok);
                }
                // Malformed `</`: emit as text.
                self.bump(1);
                return Some(Token::Text("<".to_string()));
            }
            if stripped
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
            {
                return Some(self.start_tag());
            }
            // `<` not opening markup: literal text.
            self.bump(1);
            return Some(Token::Text("<".to_string()));
        }
        // Text run up to the next `<`.
        let end = rest.find('<').unwrap_or(rest.len());
        let text = &rest[..end];
        self.bump(end);
        Some(Token::Text(decode(text)))
    }

    fn raw_text(&mut self, tag: &str) -> Token {
        self.raw_text_until = None;
        let rest = self.rest();
        let closer = format!("</{tag}");
        match find_ascii_ci(rest, &closer) {
            Some(idx) => {
                let content = &rest[..idx];
                self.bump(idx);
                Token::Text(content.to_string())
            }
            None => {
                let content = rest;
                self.bump(rest.len());
                Token::Text(content.to_string())
            }
        }
    }

    fn comment(&mut self) -> Token {
        // self.rest() starts with `<!--`.
        let body_start = self.pos + 4;
        let rest = &self.input[body_start..];
        match rest.find("-->") {
            Some(idx) => {
                let body = &rest[..idx];
                self.pos = body_start + idx + 3;
                Token::Comment(body.to_string())
            }
            None => {
                let body = rest;
                self.pos = self.input.len();
                Token::Comment(body.to_string())
            }
        }
    }

    fn doctype(&mut self) -> Token {
        // self.rest() starts with `<!doctype` (any case).
        let body_start = self.pos + 9;
        let rest = &self.input[body_start..];
        match rest.find('>') {
            Some(idx) => {
                let body = rest[..idx].trim().to_string();
                self.pos = body_start + idx + 1;
                Token::Doctype(body)
            }
            None => {
                let body = rest.trim().to_string();
                self.pos = self.input.len();
                Token::Doctype(body)
            }
        }
    }

    fn end_tag(&mut self) -> Option<Token> {
        // self.rest() starts with `</`.
        let rest = &self.rest()[2..];
        let name_end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
            .unwrap_or(rest.len());
        if name_end == 0 {
            return None;
        }
        let name = rest[..name_end].to_ascii_lowercase();
        // Skip to `>`.
        let after = &rest[name_end..];
        let close = after.find('>').map(|i| i + 1).unwrap_or(after.len());
        self.bump(2 + name_end + close);
        Some(Token::EndTag { name })
    }

    fn start_tag(&mut self) -> Token {
        // self.rest() starts with `<name`.
        self.bump(1);
        let rest = self.rest();
        let name_end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
            .unwrap_or(rest.len());
        let name = rest[..name_end].to_ascii_lowercase();
        self.bump(name_end);

        let mut attrs: Vec<Attribute> = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            let rest = self.rest();
            if rest.is_empty() {
                break;
            }
            if let Some(after) = rest.strip_prefix("/>") {
                let _ = after;
                self_closing = true;
                self.bump(2);
                break;
            }
            if rest.starts_with('>') {
                self.bump(1);
                break;
            }
            if rest.starts_with('/') {
                // Stray slash not followed by `>`: skip it.
                self.bump(1);
                continue;
            }
            // Attribute name.
            let name_end = rest
                .find(|c: char| c.is_ascii_whitespace() || c == '=' || c == '>' || c == '/')
                .unwrap_or(rest.len());
            if name_end == 0 {
                // Unexpected character; skip to avoid looping.
                self.bump(1);
                continue;
            }
            let attr_name = rest[..name_end].to_ascii_lowercase();
            self.bump(name_end);
            self.skip_whitespace();
            let value = if self.rest().starts_with('=') {
                self.bump(1);
                self.skip_whitespace();
                self.attr_value()
            } else {
                String::new()
            };
            if !attrs.iter().any(|a| a.name == attr_name) {
                attrs.push(Attribute {
                    name: attr_name,
                    value,
                });
            }
        }

        if RAW_TEXT_ELEMENTS.contains(&name.as_str()) && !self_closing {
            self.raw_text_until = Some(name.clone());
        }
        Token::StartTag {
            name,
            attrs,
            self_closing,
        }
    }

    fn attr_value(&mut self) -> String {
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix('"') {
            let end = stripped.find('"').unwrap_or(stripped.len());
            let value = decode(&stripped[..end]);
            self.bump(1 + end + usize::from(end < stripped.len()));
            value
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            let end = stripped.find('\'').unwrap_or(stripped.len());
            let value = decode(&stripped[..end]);
            self.bump(1 + end + usize::from(end < stripped.len()));
            value
        } else {
            let end = rest
                .find(|c: char| c.is_ascii_whitespace() || c == '>')
                .unwrap_or(rest.len());
            let value = decode(&rest[..end]);
            self.bump(end);
            value
        }
    }

    fn skip_whitespace(&mut self) {
        let rest = self.rest();
        let skipped = rest.len() - rest.trim_start().len();
        self.bump(skipped);
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Token;
    fn next(&mut self) -> Option<Token> {
        self.next_token()
    }
}

/// ASCII-case-insensitive substring search. The needle is ASCII (a `</tag`
/// closer), so matching byte-for-byte with `eq_ignore_ascii_case` can only
/// land on character boundaries — truncated or corrupted multi-byte text
/// before the closer never breaks the returned index. Allocation-free, so a
/// document stuffed with unclosed raw-text elements stays linear instead of
/// lower-casing the remaining input once per element.
fn find_ascii_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() {
        return Some(0);
    }
    if h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| h[i..i + n.len()].eq_ignore_ascii_case(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(n, v)| Attribute {
                    name: n.to_string(),
                    value: v.to_string(),
                })
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_document() {
        let toks = Tokenizer::run("<html><body>Hi</body></html>");
        assert_eq!(
            toks,
            vec![
                start("html", &[]),
                start("body", &[]),
                Token::Text("Hi".to_string()),
                Token::EndTag {
                    name: "body".to_string()
                },
                Token::EndTag {
                    name: "html".to_string()
                },
            ]
        );
    }

    #[test]
    fn attributes_all_quote_styles() {
        let toks = Tokenizer::run(r#"<iframe src="http://a/" width='300' height=250 allowfullscreen>"#);
        assert_eq!(
            toks,
            vec![start(
                "iframe",
                &[
                    ("src", "http://a/"),
                    ("width", "300"),
                    ("height", "250"),
                    ("allowfullscreen", ""),
                ]
            )]
        );
    }

    #[test]
    fn attribute_names_lowercased_duplicates_dropped() {
        let toks = Tokenizer::run(r#"<div ID="first" id="second">"#);
        assert_eq!(toks, vec![start("div", &[("id", "first")])]);
    }

    #[test]
    fn self_closing_tag() {
        let toks = Tokenizer::run("<br/><img src=x />");
        assert_eq!(
            toks,
            vec![
                Token::StartTag {
                    name: "br".to_string(),
                    attrs: vec![],
                    self_closing: true,
                },
                Token::StartTag {
                    name: "img".to_string(),
                    attrs: vec![Attribute {
                        name: "src".to_string(),
                        value: "x".to_string()
                    }],
                    self_closing: true,
                },
            ]
        );
    }

    #[test]
    fn script_content_is_raw() {
        let html = r#"<script>if (a < b) { document.write("<b>x</b>"); }</script>"#;
        let toks = Tokenizer::run(html);
        assert_eq!(
            toks,
            vec![
                start("script", &[]),
                Token::Text(r#"if (a < b) { document.write("<b>x</b>"); }"#.to_string()),
                Token::EndTag {
                    name: "script".to_string()
                },
            ]
        );
    }

    #[test]
    fn raw_text_case_insensitive_close() {
        let toks = Tokenizer::run("<SCRIPT>x=1</ScRiPt>");
        assert!(matches!(&toks[1], Token::Text(t) if t == "x=1"));
    }

    #[test]
    fn unterminated_script_consumes_rest() {
        let toks = Tokenizer::run("<script>var x = 1;");
        assert_eq!(toks.len(), 2);
        assert!(matches!(&toks[1], Token::Text(t) if t == "var x = 1;"));
    }

    #[test]
    fn comment_and_doctype() {
        let toks = Tokenizer::run("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("html".to_string()));
        assert_eq!(toks[1], Token::Comment(" note ".to_string()));
    }

    #[test]
    fn unterminated_comment() {
        let toks = Tokenizer::run("<!-- never closed");
        assert_eq!(toks, vec![Token::Comment(" never closed".to_string())]);
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let toks = Tokenizer::run(r#"<a title="x &amp; y">a &lt; b</a>"#);
        assert_eq!(
            toks[0],
            start("a", &[("title", "x & y")])
        );
        assert_eq!(toks[1], Token::Text("a < b".to_string()));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = Tokenizer::run("1 < 2 and 2 <3");
        let text: String = toks
            .iter()
            .map(|t| match t {
                Token::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(text, "1 < 2 and 2 <3");
    }

    #[test]
    fn end_tag_with_junk() {
        let toks = Tokenizer::run("</div junk>");
        assert_eq!(
            toks,
            vec![Token::EndTag {
                name: "div".to_string()
            }]
        );
    }

    #[test]
    fn empty_input() {
        assert!(Tokenizer::run("").is_empty());
    }

    #[test]
    fn unquoted_value_stops_at_gt() {
        let toks = Tokenizer::run("<div class=a>text");
        assert_eq!(toks[0], start("div", &[("class", "a")]));
        assert_eq!(toks[1], Token::Text("text".to_string()));
    }

    #[test]
    fn unterminated_quoted_attr() {
        let toks = Tokenizer::run(r#"<div class="never"#);
        assert_eq!(toks, vec![start("div", &[("class", "never")])]);
    }
}
