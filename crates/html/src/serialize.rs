//! DOM serialization back to HTML text.
//!
//! The crawler stores each extracted ad iframe as a standalone HTML document
//! (§3.1: "we created HTML documents based on the contents of the iframes"),
//! and corpus de-duplication keys on the serialized form — so serialization
//! must be deterministic and stable.

use crate::dom::{Document, NodeId, NodeKind};
use crate::entities::{escape_attr, escape_text};
use crate::parser::VOID_ELEMENTS;
use crate::tokenizer::RAW_TEXT_ELEMENTS;

/// Serializes the subtree rooted at `id` (excluding the root node itself when
/// it is the document node) to HTML text.
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

/// Serializes an entire document.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for &child in &doc.node(NodeId::ROOT).children {
        write_node(doc, child, &mut out);
    }
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &child in &doc.node(id).children {
                write_node(doc, child, out);
            }
        }
        NodeKind::Text(t) => {
            // Text inside raw-text elements is emitted verbatim.
            let parent_raw = doc
                .node(id)
                .parent
                .and_then(|p| doc.element(p))
                .map(|e| RAW_TEXT_ELEMENTS.contains(&e.name.as_str()))
                .unwrap_or(false);
            if parent_raw {
                out.push_str(t);
            } else {
                out.push_str(&escape_text(t));
            }
        }
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::Element(e) => {
            out.push('<');
            out.push_str(&e.name);
            for attr in &e.attrs {
                out.push(' ');
                out.push_str(&attr.name);
                if !attr.value.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&attr.value));
                    out.push('"');
                }
            }
            out.push('>');
            if VOID_ELEMENTS.contains(&e.name.as_str()) {
                return;
            }
            for &child in &doc.node(id).children {
                write_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(&e.name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrip_simple() {
        let src = r#"<html><body><p class="x">hello <b>world</b></p></body></html>"#;
        let doc = parse_document(src);
        assert_eq!(serialize(&doc), src);
    }

    #[test]
    fn roundtrip_is_fixpoint() {
        // Serialization of a parse must be stable under re-parsing.
        let src = r#"<div data-x='1' hidden><img src=pic.png><p>a<p>b</div>"#;
        let once = serialize(&parse_document(src));
        let twice = serialize(&parse_document(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn void_elements_not_closed() {
        let doc = parse_document("<br><img src=x>");
        assert_eq!(serialize(&doc), r#"<br><img src="x">"#);
    }

    #[test]
    fn valueless_attribute() {
        let doc = parse_document("<iframe sandbox></iframe>");
        assert_eq!(serialize(&doc), "<iframe sandbox></iframe>");
    }

    #[test]
    fn text_escaped() {
        let mut doc = Document::new();
        let p = doc.append_element(NodeId::ROOT, "p", vec![]);
        doc.append_text(p, "a < b & c");
        assert_eq!(serialize(&doc), "<p>a &lt; b &amp; c</p>");
    }

    #[test]
    fn attr_escaped() {
        let mut doc = Document::new();
        let mut e = crate::dom::ElementData::new("a", vec![]);
        e.set_attr("title", r#"say "hi" & bye"#);
        doc.append(NodeId::ROOT, NodeKind::Element(e));
        assert_eq!(
            serialize(&doc),
            r#"<a title="say &quot;hi&quot; &amp; bye"></a>"#
        );
    }

    #[test]
    fn script_content_verbatim() {
        let src = "<script>if (a < b && c > d) go();</script>";
        let doc = parse_document(src);
        assert_eq!(serialize(&doc), src);
    }

    #[test]
    fn comment_preserved() {
        let src = "<div><!-- note --></div>";
        let doc = parse_document(src);
        assert_eq!(serialize(&doc), src);
    }

    #[test]
    fn serialize_subtree_only() {
        let doc = parse_document("<div><span>inner</span></div>");
        let span = doc.first_by_tag("span").unwrap();
        assert_eq!(serialize_node(&doc, span), "<span>inner</span>");
    }
}
