//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` owned by [`Document`], addressed by [`NodeId`].
//! This keeps the tree `Send`, cheap to clone, and free of `Rc` cycles — the
//! emulated browser clones subtrees when it extracts iframe documents.

use crate::tokenizer::Attribute;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The document root node id.
    pub const ROOT: NodeId = NodeId(0);
}

/// Element name plus attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementData {
    /// Lower-cased tag name.
    pub name: String,
    /// Attributes in source order.
    pub attrs: Vec<Attribute>,
}

impl ElementData {
    /// Creates element data with the given name and attributes.
    pub fn new(name: &str, attrs: Vec<Attribute>) -> Self {
        Self {
            name: name.to_ascii_lowercase(),
            attrs,
        }
    }

    /// Looks up an attribute value by (lower-case) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// True when the attribute is present, regardless of value.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name == name)
    }

    /// Sets an attribute, replacing an existing one of the same name.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let name = name.to_ascii_lowercase();
        match self.attrs.iter_mut().find(|a| a.name == name) {
            Some(a) => a.value = value.to_string(),
            None => self.attrs.push(Attribute {
                name,
                value: value.to_string(),
            }),
        }
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document root (exactly one per document, at [`NodeId::ROOT`]).
    Document,
    /// An element.
    Element(ElementData),
    /// A text node.
    Text(String),
    /// A comment node.
    Comment(String),
}

/// A node in the arena: kind plus tree links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's content.
    pub kind: NodeKind,
    /// Parent link (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document: an arena of [`Node`]s rooted at [`NodeId::ROOT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document (root only).
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutably borrows a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Borrows element data when `id` is an element.
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        match &self.node(id).kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Mutably borrows element data when `id` is an element.
    pub fn element_mut(&mut self, id: NodeId) -> Option<&mut ElementData> {
        match &mut self.node_mut(id).kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Appends a new node under `parent`, returning its id.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Appends an element under `parent`.
    pub fn append_element(&mut self, parent: NodeId, name: &str, attrs: Vec<Attribute>) -> NodeId {
        self.append(parent, NodeKind::Element(ElementData::new(name, attrs)))
    }

    /// Appends a text node under `parent`.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append(parent, NodeKind::Text(text.to_string()))
    }

    /// Iterates all node ids in pre-order (document order).
    pub fn descendants(&self, start: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![start],
            skip_first: true,
            first: true,
        }
    }

    /// Iterates every element in document order.
    pub fn elements(&self) -> impl Iterator<Item = (NodeId, &ElementData)> {
        self.descendants(NodeId::ROOT).filter_map(move |id| {
            self.element(id).map(|e| (id, e))
        })
    }

    /// Finds all elements with the given (lower-case) tag name.
    pub fn elements_by_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.elements()
            .filter(move |(_, e)| e.name == tag)
            .map(|(id, _)| id)
    }

    /// The first element with the given tag name, if any.
    pub fn first_by_tag(&self, tag: &str) -> Option<NodeId> {
        self.elements_by_tag(tag).next()
    }

    /// Concatenated text content of the subtree at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        if let NodeKind::Text(t) = &self.node(id).kind {
            out.push_str(t);
        }
        for d in self.descendants(id) {
            if let NodeKind::Text(t) = &self.node(d).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// Walks ancestors from `id` (exclusive) to the root (inclusive).
    pub fn ancestors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut current = self.node(id).parent;
        std::iter::from_fn(move || {
            let id = current?;
            current = self.node(id).parent;
            Some(id)
        })
    }

    /// Deep-copies the subtree rooted at `id` into a fresh document whose root
    /// directly contains the copied node. Used to lift an iframe's inline
    /// markup out of its host page.
    pub fn extract_subtree(&self, id: NodeId) -> Document {
        let mut out = Document::new();
        self.copy_into(id, &mut out, NodeId::ROOT);
        out
    }

    fn copy_into(&self, src: NodeId, out: &mut Document, dst_parent: NodeId) {
        let node = self.node(src);
        let new_id = out.append(dst_parent, node.kind.clone());
        for &child in &node.children {
            self.copy_into(child, out, new_id);
        }
    }
}

/// Pre-order iterator over a subtree, excluding the start node.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
    skip_first: bool,
    first: bool,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let id = self.stack.pop()?;
            // Push children in reverse so they pop in order.
            let node = self.doc.node(id);
            for &child in node.children.iter().rev() {
                self.stack.push(child);
            }
            if self.first && self.skip_first {
                self.first = false;
                continue;
            }
            return Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.append_element(NodeId::ROOT, "html", vec![]);
        let body = doc.append_element(html, "body", vec![]);
        let p = doc.append_element(body, "p", vec![]);
        doc.append_text(p, "hello ");
        let b = doc.append_element(p, "b", vec![]);
        doc.append_text(b, "world");
        (doc, html, body, p)
    }

    #[test]
    fn append_links_parent_and_children() {
        let (doc, html, body, _) = tiny();
        assert_eq!(doc.node(body).parent, Some(html));
        assert_eq!(doc.node(html).children, vec![body]);
    }

    #[test]
    fn descendants_in_document_order() {
        let (doc, ..) = tiny();
        let tags: Vec<String> = doc
            .descendants(NodeId::ROOT)
            .filter_map(|id| doc.element(id).map(|e| e.name.clone()))
            .collect();
        assert_eq!(tags, vec!["html", "body", "p", "b"]);
    }

    #[test]
    fn text_content_concatenates() {
        let (doc, _, _, p) = tiny();
        assert_eq!(doc.text_content(p), "hello world");
        assert_eq!(doc.text_content(NodeId::ROOT), "hello world");
    }

    #[test]
    fn elements_by_tag_finds_all() {
        let mut doc = Document::new();
        let body = doc.append_element(NodeId::ROOT, "body", vec![]);
        doc.append_element(body, "iframe", vec![]);
        let div = doc.append_element(body, "div", vec![]);
        doc.append_element(div, "iframe", vec![]);
        assert_eq!(doc.elements_by_tag("iframe").count(), 2);
        assert_eq!(doc.first_by_tag("div"), Some(div));
        assert_eq!(doc.first_by_tag("video"), None);
    }

    #[test]
    fn attrs_get_set() {
        let mut e = ElementData::new("IFRAME", vec![]);
        assert_eq!(e.name, "iframe");
        assert!(!e.has_attr("src"));
        e.set_attr("SRC", "http://a/");
        assert_eq!(e.attr("src"), Some("http://a/"));
        e.set_attr("src", "http://b/");
        assert_eq!(e.attr("src"), Some("http://b/"));
        assert_eq!(e.attrs.len(), 1);
    }

    #[test]
    fn ancestors_walk() {
        let (doc, html, body, p) = tiny();
        let anc: Vec<_> = doc.ancestors(p).collect();
        assert_eq!(anc, vec![body, html, NodeId::ROOT]);
    }

    #[test]
    fn extract_subtree_copies_deeply() {
        let (doc, _, _, p) = tiny();
        let sub = doc.extract_subtree(p);
        // Root -> p -> [text, b -> text]
        let p_copy = sub.node(NodeId::ROOT).children[0];
        assert_eq!(sub.element(p_copy).unwrap().name, "p");
        assert_eq!(sub.text_content(NodeId::ROOT), "hello world");
        // Mutating the copy must not affect the original.
        assert_eq!(doc.text_content(p), "hello world");
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.descendants(NodeId::ROOT).count(), 0);
    }
}
