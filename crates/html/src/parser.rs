//! Tree builder: turns the token stream into a [`Document`].
//!
//! Forgiving by design — real pages (and deliberately sloppy ad markup) are
//! full of unclosed tags. Recovery rules:
//!
//! * Void elements never take children.
//! * An end tag that matches an open element pops everything above it; one
//!   that matches nothing is dropped.
//! * `p`, `li`, `option`, `tr`, `td`, `th` auto-close when a sibling of the
//!   same kind opens.
//! * Everything left open at end-of-input is implicitly closed.

use crate::dom::{Document, NodeId, NodeKind};
use crate::tokenizer::{Token, Tokenizer};

/// Elements that cannot have content.
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param",
    "source", "track", "wbr",
];

/// Elements that auto-close when a sibling of the same name opens.
const AUTO_CLOSE_SIBLING: &[&str] = &["p", "li", "option", "tr", "td", "th"];

/// Parses `input` into a DOM tree. Never fails: recovery rules apply.
pub fn parse_document(input: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<(NodeId, String)> = vec![(NodeId::ROOT, String::new())];

    for token in Tokenizer::new(input) {
        match token {
            Token::Doctype(_) => {}
            Token::Comment(body) => {
                let parent = stack.last().expect("stack never empty").0;
                doc.append(parent, NodeKind::Comment(body));
            }
            Token::Text(text) => {
                if text.is_empty() {
                    continue;
                }
                let parent = stack.last().expect("stack never empty").0;
                doc.append_text(parent, &text);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Auto-close a same-name sibling for the formatting set.
                if AUTO_CLOSE_SIBLING.contains(&name.as_str())
                    && stack.last().is_some_and(|(_, n)| *n == name)
                {
                    stack.pop();
                }
                let parent = stack.last().expect("stack never empty").0;
                let id = doc.append_element(parent, &name, attrs);
                let is_void = VOID_ELEMENTS.contains(&name.as_str());
                if !is_void && !self_closing {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                // Find the matching open element, if any.
                if let Some(pos) = stack.iter().rposition(|(_, n)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
                // No match: drop the end tag.
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeId;

    fn tags_in_order(doc: &Document) -> Vec<String> {
        doc.descendants(NodeId::ROOT)
            .filter_map(|id| doc.element(id).map(|e| e.name.clone()))
            .collect()
    }

    #[test]
    fn well_formed_document() {
        let doc = parse_document("<html><head><title>t</title></head><body><p>x</p></body></html>");
        assert_eq!(tags_in_order(&doc), vec!["html", "head", "title", "body", "p"]);
        assert_eq!(doc.text_content(NodeId::ROOT), "tx");
    }

    #[test]
    fn nesting_structure() {
        let doc = parse_document("<div><span>a</span><span>b</span></div>");
        let div = doc.first_by_tag("div").unwrap();
        let spans: Vec<_> = doc
            .node(div)
            .children
            .iter()
            .filter(|&&c| doc.element(c).is_some())
            .collect();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_document("<body><img src=x><p>after</p></body>");
        let img = doc.first_by_tag("img").unwrap();
        assert!(doc.node(img).children.is_empty());
        let p = doc.first_by_tag("p").unwrap();
        // `p` must be a sibling of img (child of body), not a child of img.
        assert_eq!(doc.node(p).parent, doc.node(img).parent);
    }

    #[test]
    fn self_closing_div_takes_no_children() {
        let doc = parse_document("<div/><span>s</span>");
        let div = doc.first_by_tag("div").unwrap();
        assert!(doc.node(div).children.is_empty());
    }

    #[test]
    fn unclosed_elements_closed_at_eof() {
        let doc = parse_document("<div><p>unclosed");
        assert_eq!(tags_in_order(&doc), vec!["div", "p"]);
        assert_eq!(doc.text_content(NodeId::ROOT), "unclosed");
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse_document("</div><p>x</p>");
        assert_eq!(tags_in_order(&doc), vec!["p"]);
    }

    #[test]
    fn mismatched_end_tag_pops_through() {
        // `</div>` closes both `b` (implicitly) and `div`.
        let doc = parse_document("<div><b>bold</div><i>after</i>");
        let i = doc.first_by_tag("i").unwrap();
        assert_eq!(doc.node(i).parent, Some(NodeId::ROOT));
    }

    #[test]
    fn p_auto_closes_sibling() {
        let doc = parse_document("<body><p>one<p>two</body>");
        let body = doc.first_by_tag("body").unwrap();
        let ps: Vec<_> = doc
            .node(body)
            .children
            .iter()
            .filter(|&&c| doc.element(c).map(|e| e.name == "p").unwrap_or(false))
            .collect();
        assert_eq!(ps.len(), 2, "second <p> must auto-close the first");
    }

    #[test]
    fn li_auto_closes_sibling() {
        let doc = parse_document("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.first_by_tag("ul").unwrap();
        assert_eq!(doc.node(ul).children.len(), 3);
    }

    #[test]
    fn script_content_preserved_verbatim() {
        let src = "<script>for (var i = 0; i < 5; i++) { x += '<div>'; }</script>";
        let doc = parse_document(src);
        let script = doc.first_by_tag("script").unwrap();
        assert_eq!(
            doc.text_content(script),
            "for (var i = 0; i < 5; i++) { x += '<div>'; }"
        );
        // No <div> element was created from the script text.
        assert!(doc.first_by_tag("div").is_none());
    }

    #[test]
    fn iframe_with_sandbox_attribute() {
        let doc =
            parse_document(r#"<iframe src="http://ads.example.com/slot" sandbox="allow-scripts">"#);
        let iframe = doc.first_by_tag("iframe").unwrap();
        let e = doc.element(iframe).unwrap();
        assert!(e.has_attr("sandbox"));
        assert_eq!(e.attr("sandbox"), Some("allow-scripts"));
    }

    #[test]
    fn comments_kept_in_tree() {
        let doc = parse_document("<div><!-- marker --></div>");
        let div = doc.first_by_tag("div").unwrap();
        assert!(matches!(
            &doc.node(doc.node(div).children[0]).kind,
            NodeKind::Comment(c) if c == " marker "
        ));
    }

    #[test]
    fn empty_input_gives_empty_doc() {
        let doc = parse_document("");
        assert!(doc.is_empty());
    }

    #[test]
    fn deeply_nested_does_not_blow_up() {
        let depth = 2000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<div>");
        }
        let doc = parse_document(&s);
        assert_eq!(doc.elements_by_tag("div").count(), depth);
    }
}
