//! Fuzz-style robustness tests: the tokenizer and tree builder must accept
//! truncated or corrupted documents without panicking and produce a
//! best-effort DOM. The crawl pipeline feeds them fault-injected bodies
//! (truncation, garbage splices), so "never fails" has to hold for every
//! byte prefix and for arbitrary corruption, not just well-formed markup.

use malvert_html::{parse_document, serialize, NodeId, Tokenizer};
use proptest::prelude::*;

/// A realistic ad-page document exercising every tokenizer state: doctype,
/// comments, raw-text elements, all three attribute quoting styles,
/// entities, self-closing tags, and multi-byte text (so byte truncation can
/// land mid-character).
const DOC: &str = r#"<!DOCTYPE html>
<html>
<head>
  <title>Publisher &mdash; caf&eacute; news</title>
  <!-- served by ad-o-matic -->
  <style>body { margin: 0; } .ad::before { content: "<ad>"; }</style>
</head>
<body>
  <p>Ein naïver Käufer — résumé &amp; więcej</p>
  <iframe src="http://ads.example.com/slot?a=1&amp;b=2" width='300' height=250
          sandbox="allow-scripts"></iframe>
  <img src=banner.png alt="50&#37; off!"/>
  <script type="text/javascript">
    if (screen.width < 800) { document.write("<div id=\"x\"></div>"); }
  </script>
  <textarea>unsent <draft> text</textarea>
</body>
</html>
"#;

/// Parses best-effort and exercises the tree: traversal, text extraction,
/// and serialization must all succeed on whatever the parser produced.
fn parse_and_walk(input: &str) {
    let doc = parse_document(input);
    let _ = doc.text_content(NodeId::ROOT);
    let _ = serialize(&doc);
    for id in doc.descendants(NodeId::ROOT) {
        let _ = doc.element(id);
    }
}

#[test]
fn every_byte_prefix_parses() {
    let bytes = DOC.as_bytes();
    for n in 0..=bytes.len() {
        // Lossy decoding stands in for the browser's handling of a
        // truncated transfer: a cut mid-character becomes U+FFFD.
        let text = String::from_utf8_lossy(&bytes[..n]);
        parse_and_walk(&text);
    }
}

#[test]
fn every_byte_suffix_parses() {
    let bytes = DOC.as_bytes();
    for n in 0..=bytes.len() {
        let text = String::from_utf8_lossy(&bytes[n..]);
        parse_and_walk(&text);
    }
}

#[test]
fn truncated_document_keeps_leading_structure() {
    // Cut right after the iframe's closing tag: everything before the cut
    // must still be in the tree.
    let cut = DOC.find("</iframe>").expect("iframe in fixture") + "</iframe>".len();
    let doc = parse_document(&DOC[..cut]);
    let iframe = doc.first_by_tag("iframe").expect("iframe survives the cut");
    assert_eq!(
        doc.element(iframe).unwrap().attr("sandbox"),
        Some("allow-scripts")
    );
    assert!(doc.first_by_tag("title").is_some());
    // The script after the cut is gone, and nothing invented it.
    assert!(doc.first_by_tag("script").is_none());
}

#[test]
fn garbage_spliced_documents_parse() {
    // Deterministic xorshift corruption: overwrite windows of the document
    // with hostile bytes (markup metacharacters and raw high bytes).
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const GARBAGE: &[u8] = b"<>&=\"'/!-\x00\xff\xc3\xe2\x80";
    for _ in 0..64 {
        let mut bytes = DOC.as_bytes().to_vec();
        let splices = 1 + (next() as usize % 4);
        for _ in 0..splices {
            let start = next() as usize % bytes.len();
            let len = (next() as usize % 24).min(bytes.len() - start);
            for b in &mut bytes[start..start + len] {
                *b = GARBAGE[next() as usize % GARBAGE.len()];
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        parse_and_walk(&text);
    }
}

#[test]
fn pathological_raw_text_stays_linear() {
    // A corrupted page full of unclosed raw-text openers: the tokenizer
    // must not choke (or go quadratic) scanning for closers that never come.
    let mut page = String::new();
    for i in 0..500 {
        page.push_str(&format!("<script>var x{i} = '<SCRIPT'; </sCrIpT>"));
    }
    page.push_str("<script>tail with no closer");
    let tokens: Vec<_> = Tokenizer::new(&page).collect();
    assert!(tokens.len() >= 1000);
    parse_and_walk(&page);
}

proptest! {
    /// Arbitrary byte soup — worst case for every tokenizer state — must
    /// tokenize and tree-build without panicking.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _token_count = Tokenizer::new(&text).count();
        parse_and_walk(&text);
    }

    /// Any prefix/suffix window of the fixture parses; the result is
    /// deterministic (two parses serialize identically).
    #[test]
    fn windows_parse_deterministically(start in 0usize..700, len in 0usize..700) {
        let bytes = DOC.as_bytes();
        let start = start.min(bytes.len());
        let end = (start + len).min(bytes.len());
        let text = String::from_utf8_lossy(&bytes[start..end]);
        let a = serialize(&parse_document(&text));
        let b = serialize(&parse_document(&text));
        prop_assert_eq!(a, b);
    }
}
