//! Atomic JSON snapshot persistence for checkpointable runs.
//!
//! Each document is written to a dot-prefixed temporary file and renamed
//! into place, so a kill at any instant — including mid-write — leaves
//! either the previous good snapshot or the new one, never a torn file.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of named JSON snapshot documents with atomic replacement.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens the snapshot directory, creating it (and any parents) if
    /// needed.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Serializes `value` to `<dir>/<name>`, atomically replacing any
    /// previous document of that name. Returns the serialized byte count
    /// (checkpoint-overhead metering feeds on it).
    pub fn save<T: Serialize>(&self, name: &str, value: &T) -> io::Result<u64> {
        let bytes = serde_json::to_vec_pretty(value).map_err(io::Error::other)?;
        let len = bytes.len() as u64;
        let tmp = self.dir.join(format!(".{name}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.dir.join(name))?;
        Ok(len)
    }

    /// Loads `<dir>/<name>`, returning `Ok(None)` when no such document
    /// has been written yet.
    pub fn load<T: DeserializeOwned>(&self, name: &str) -> io::Result<Option<T>> {
        let path = self.dir.join(name);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        serde_json::from_slice(&bytes)
            .map(Some)
            .map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
    struct Doc {
        cursor: usize,
        label: String,
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malvert-engine-{}-{tag}", std::process::id()))
    }

    #[test]
    fn round_trips_and_overwrites_atomically() {
        let dir = scratch_dir("roundtrip");
        let store = SnapshotStore::open(&dir).expect("store opens");
        assert_eq!(store.load::<Doc>("state.json").expect("load"), None);

        let first = Doc {
            cursor: 64,
            label: "shard 1".into(),
        };
        store.save("state.json", &first).expect("save");
        assert_eq!(store.load("state.json").expect("load"), Some(first));

        let second = Doc {
            cursor: 128,
            label: "shard 2".into(),
        };
        store.save("state.json", &second).expect("overwrite");
        assert_eq!(store.load("state.json").expect("load"), Some(second));

        // The temporary never lingers after a completed save.
        assert!(!dir.join(".state.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_an_existing_directory_keeps_documents() {
        let dir = scratch_dir("reopen");
        let store = SnapshotStore::open(&dir).expect("store opens");
        let doc = Doc {
            cursor: 7,
            label: "persisted".into(),
        };
        store.save("manifest.json", &doc).expect("save");
        drop(store);
        let store = SnapshotStore::open(&dir).expect("store reopens");
        assert_eq!(store.load("manifest.json").expect("load"), Some(doc));
        let _ = fs::remove_dir_all(&dir);
    }
}
