//! # malvert-engine
//!
//! The sharded, work-stealing execution engine behind the study pipeline.
//!
//! [`run_fold`] moves a range of job indices through a caller-supplied
//! work function on a pool of persistent workers and streams every result
//! into one aggregate state, so memory stays bounded at any corpus size.
//! Jobs are grouped into *shards*: within a shard workers drain contiguous
//! spans and steal from the busiest span, and at each shard boundary every
//! worker is parked while a caller callback observes the exact fold of the
//! completed prefix — the natural place to persist a [`SnapshotStore`]
//! checkpoint or to stop early so a killed run can resume.
//!
//! The engine itself is deterministic only in *coverage* (every job runs
//! exactly once, boundaries land at exact job counts); result determinism
//! is the caller's contract, either by folding positionally (the fold
//! callback receives the job index) or by using an order-insensitive
//! aggregate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
mod snapshot;

pub use scheduler::{
    run_fold, run_fold_observed, Boundary, EngineConfig, EngineSnapshot, EngineStats, FoldOutcome,
};
pub use snapshot::SnapshotStore;
