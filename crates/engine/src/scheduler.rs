//! The sharded work-stealing scheduler.
//!
//! A job range is carved into fixed-size shards. Within a shard each
//! worker owns one contiguous span of job indices and drains it
//! front-to-back; a worker whose span runs dry steals from the span with
//! the most work remaining. Because every contender claims jobs through
//! the victim span's shared atomic cursor, each job executes exactly once
//! regardless of who wins the race. All workers join at the shard
//! boundary, where a coordinator callback sees the exact fold of the
//! completed prefix and decides whether to continue or stop.

use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs for [`run_fold`]: the worker-pool width and the number of
/// jobs per shard (the checkpoint granule). Both are speed/granularity
/// knobs only — results must not depend on either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    workers: usize,
    shard_size: usize,
}

impl EngineConfig {
    /// Builds a config; both knobs are clamped to at least 1.
    pub fn new(workers: usize, shard_size: usize) -> EngineConfig {
        EngineConfig {
            workers: workers.max(1),
            shard_size: shard_size.max(1),
        }
    }

    /// Worker threads the scheduler runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs per shard (the snapshot granule).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }
}

/// Lock-free scheduler meters for one [`run_fold_observed`] call: steal
/// and park counts plus a per-worker job tally. Cloning shares the meters
/// (an `Arc` bump); recording is a relaxed atomic add, so metered and
/// unmetered runs take the same code path through the scheduler.
///
/// Everything here is a scheduling accident — which worker won a race,
/// how often spans ran dry — and must never feed back into results.
#[derive(Debug, Clone)]
pub struct EngineStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug)]
struct StatsInner {
    steals: AtomicU64,
    parks: AtomicU64,
    worker_jobs: Vec<AtomicU64>,
}

impl EngineStats {
    /// Meters for a pool of `workers` threads (clamped to at least 1, the
    /// same floor [`EngineConfig::new`] applies).
    pub fn new(workers: usize) -> EngineStats {
        EngineStats {
            inner: Arc::new(StatsInner {
                steals: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                worker_jobs: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// Credits `worker` with one executed job, counting it as a steal when
    /// it was claimed from another worker's span.
    fn record_job(&self, worker: usize, stolen: bool) {
        if let Some(slot) = self.inner.worker_jobs.get(worker) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        if stolen {
            self.inner.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Credits `worker` with `n` executed jobs (the sequential fast path).
    fn record_jobs(&self, worker: usize, n: u64) {
        if let Some(slot) = self.inner.worker_jobs.get(worker) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one worker parking because every span ran dry.
    fn record_park(&self) {
        self.inner.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the meters.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            steals: self.inner.steals.load(Ordering::Relaxed),
            parks: self.inner.parks.load(Ordering::Relaxed),
            worker_jobs: self
                .inner
                .worker_jobs
                .iter()
                .map(|n| n.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data copy of [`EngineStats`] meters at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Jobs a worker claimed from another worker's span.
    pub steals: u64,
    /// Times a worker found every span dry and parked for the boundary.
    pub parks: u64,
    /// Jobs executed per worker, indexed by worker id.
    pub worker_jobs: Vec<u64>,
}

/// What to do after a shard completes: keep going, or park so the caller
/// can persist the prefix and exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Proceed to the next shard.
    Continue,
    /// Stop before the next shard; [`FoldOutcome::next_job`] then points
    /// at the first unprocessed job.
    Stop,
}

/// The result of [`run_fold`]: the folded state plus the index of the
/// first job that did *not* execute (the range end when everything ran).
#[derive(Debug)]
pub struct FoldOutcome<S> {
    /// The folded aggregate state.
    pub state: S,
    /// First unprocessed job index.
    pub next_job: usize,
}

/// Runs every job in `jobs` through `work` on a sharded work-stealing
/// pool, folding each result into `state`.
///
/// Guarantees:
///
/// * every job in the range executes exactly once;
/// * `boundary` runs on the calling thread after each shard with all
///   workers parked, so the state it sees is exactly the fold of jobs
///   `[jobs.start, next_job)`;
/// * worker-local scratch built by `init_worker` persists across shards
///   (one scratch state per worker, built up front on the calling
///   thread).
///
/// Fold order within a shard follows worker scheduling; callers that need
/// positional results slot them by the job index the fold receives.
pub fn run_fold<S, W, T>(
    config: &EngineConfig,
    jobs: Range<usize>,
    state: S,
    init_worker: impl FnMut(usize) -> W,
    work: impl Fn(&mut W, usize) -> T + Sync,
    fold: impl Fn(&mut S, usize, T) + Sync,
    boundary: impl FnMut(&mut S, usize) -> Boundary,
) -> FoldOutcome<S>
where
    S: Send,
    W: Send,
{
    run_fold_observed(config, None, jobs, state, init_worker, work, fold, boundary)
}

/// [`run_fold`] with scheduler observability: when `stats` is provided,
/// steal/park counts and per-worker job tallies accumulate into it as the
/// run proceeds (readable at boundaries via [`EngineStats::snapshot`]).
/// `None` is exactly [`run_fold`].
// One parameter over clippy's limit, but this *is* run_fold's signature
// plus the meters — a params struct would just rename the positions.
#[allow(clippy::too_many_arguments)]
pub fn run_fold_observed<S, W, T>(
    config: &EngineConfig,
    stats: Option<&EngineStats>,
    jobs: Range<usize>,
    state: S,
    mut init_worker: impl FnMut(usize) -> W,
    work: impl Fn(&mut W, usize) -> T + Sync,
    fold: impl Fn(&mut S, usize, T) + Sync,
    mut boundary: impl FnMut(&mut S, usize) -> Boundary,
) -> FoldOutcome<S>
where
    S: Send,
    W: Send,
{
    let total = jobs.end;
    let mut next = jobs.start.min(total);

    if config.workers == 1 {
        let mut state = state;
        let mut worker = init_worker(0);
        while next < total {
            let hi = (next + config.shard_size).min(total);
            for job in next..hi {
                let out = work(&mut worker, job);
                fold(&mut state, job, out);
            }
            if let Some(stats) = stats {
                stats.record_jobs(0, (hi - next) as u64);
            }
            next = hi;
            if boundary(&mut state, next) == Boundary::Stop && next < total {
                break;
            }
        }
        return FoldOutcome {
            state,
            next_job: next,
        };
    }

    let mut worker_states: Vec<W> = (0..config.workers).map(&mut init_worker).collect();
    let mut state = Mutex::new(state);
    while next < total {
        let hi = (next + config.shard_size).min(total);
        let spans = carve(next, hi, config.workers);
        let spans_ref = &spans[..];
        let state_ref = &state;
        let work_ref = &work;
        let fold_ref = &fold;
        crossbeam::scope(|scope| {
            for (home, worker) in worker_states.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    run_worker(
                        home, worker, spans_ref, state_ref, work_ref, fold_ref, stats,
                    )
                });
            }
        })
        .expect("engine workers panicked");
        next = hi;
        if boundary(state.get_mut(), next) == Boundary::Stop && next < total {
            break;
        }
    }
    FoldOutcome {
        state: state.into_inner(),
        next_job: next,
    }
}

/// One contiguous span of a shard: jobs `[cursor, end)` remain; the
/// cursor is shared so the owner and any thief claim exactly-once.
struct Span {
    cursor: AtomicUsize,
    end: usize,
}

fn carve(lo: usize, hi: usize, workers: usize) -> Vec<Span> {
    let len = hi - lo;
    let base = len / workers;
    let extra = len % workers;
    let mut spans = Vec::with_capacity(workers);
    let mut start = lo;
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        spans.push(Span {
            cursor: AtomicUsize::new(start),
            end: start + take,
        });
        start += take;
    }
    spans
}

/// The span to pull from next: the worker's own span while it has work,
/// otherwise the span with the most jobs remaining (a snapshot heuristic;
/// exactly-once still holds because claims go through the cursor).
fn pick(spans: &[Span], home: usize) -> Option<usize> {
    let remaining = |s: &Span| s.end.saturating_sub(s.cursor.load(Ordering::Relaxed));
    if remaining(&spans[home]) > 0 {
        return Some(home);
    }
    spans
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| remaining(s))
        .filter(|&(_, s)| remaining(s) > 0)
        .map(|(i, _)| i)
}

fn run_worker<S, W, T, F, G>(
    home: usize,
    worker: &mut W,
    spans: &[Span],
    state: &Mutex<S>,
    work: &F,
    fold: &G,
    stats: Option<&EngineStats>,
) where
    F: Fn(&mut W, usize) -> T,
    G: Fn(&mut S, usize, T),
{
    while let Some(victim) = pick(spans, home) {
        let span = &spans[victim];
        let job = span.cursor.fetch_add(1, Ordering::Relaxed);
        if job >= span.end {
            // Lost the race on the span's last job; pick again.
            continue;
        }
        if let Some(stats) = stats {
            stats.record_job(home, victim != home);
        }
        let out = work(worker, job);
        let mut guard = state.lock();
        fold(&mut *guard, job, out);
    }
    if let Some(stats) = stats {
        stats.record_park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_range(workers: usize, shard: usize, jobs: Range<usize>) -> (u64, usize) {
        let outcome = run_fold(
            &EngineConfig::new(workers, shard),
            jobs,
            0u64,
            |_| (),
            |_, job| job as u64 * 3 + 1,
            |acc, _, v| *acc += v,
            |_, _| Boundary::Continue,
        );
        (outcome.state, outcome.next_job)
    }

    #[test]
    fn folds_every_job_exactly_once_at_any_geometry() {
        let expected: u64 = (0..1000u64).map(|j| j * 3 + 1).sum();
        for workers in [1, 2, 8] {
            for shard in [1, 7, 64, 5000] {
                let (sum, next) = sum_range(workers, shard, 0..1000);
                assert_eq!(sum, expected, "workers={workers} shard={shard}");
                assert_eq!(next, 1000);
            }
        }
    }

    #[test]
    fn exactly_once_under_stealing() {
        // Skewed job costs force stealing; every job must still fold once.
        let outcome = run_fold(
            &EngineConfig::new(8, 256),
            0..512,
            vec![0u32; 512],
            |_| (),
            |_, job| {
                if job % 97 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                job
            },
            |seen, _, job| seen[job] += 1,
            |_, _| Boundary::Continue,
        );
        assert!(outcome.state.iter().all(|&n| n == 1));
    }

    #[test]
    fn boundary_sees_the_exact_prefix_fold() {
        run_fold(
            &EngineConfig::new(8, 16),
            0..100,
            0u64,
            |_| (),
            |_, job| job as u64,
            |acc, _, v| *acc += v,
            |acc, next| {
                let expected: u64 = (0..next as u64).sum();
                assert_eq!(*acc, expected, "boundary at {next}");
                Boundary::Continue
            },
        );
    }

    #[test]
    fn stop_at_a_boundary_then_resume_equals_one_shot() {
        let config = EngineConfig::new(4, 10);
        let work = |_: &mut (), job: usize| job as u64;
        let fold = |acc: &mut u64, _: usize, v: u64| *acc += v;
        let one_shot = run_fold(
            &config,
            0..95,
            0u64,
            |_| (),
            work,
            fold,
            |_, _| Boundary::Continue,
        );
        let mut shards = 0;
        let first = run_fold(
            &config,
            0..95,
            0u64,
            |_| (),
            work,
            fold,
            |_, _| {
                shards += 1;
                if shards == 3 {
                    Boundary::Stop
                } else {
                    Boundary::Continue
                }
            },
        );
        assert_eq!(first.next_job, 30, "stop lands on an exact shard edge");
        let resumed = run_fold(
            &config,
            first.next_job..95,
            first.state,
            |_| (),
            work,
            fold,
            |_, _| Boundary::Continue,
        );
        assert_eq!(resumed.state, one_shot.state);
        assert_eq!(resumed.next_job, 95);
    }

    #[test]
    fn observed_run_meters_jobs_without_perturbing_results() {
        let expected: u64 = (0..600u64).map(|j| j * 3 + 1).sum();
        for workers in [1usize, 4] {
            let stats = EngineStats::new(workers);
            let outcome = run_fold_observed(
                &EngineConfig::new(workers, 64),
                Some(&stats),
                0..600,
                0u64,
                |_| (),
                |_, job| job as u64 * 3 + 1,
                |acc, _, v| *acc += v,
                |_, _| Boundary::Continue,
            );
            assert_eq!(outcome.state, expected, "metering changed the fold");
            let snap = stats.snapshot();
            assert_eq!(snap.worker_jobs.len(), workers);
            assert_eq!(
                snap.worker_jobs.iter().sum::<u64>(),
                600,
                "every job credited exactly once (workers={workers})"
            );
            if workers == 1 {
                assert_eq!(snap.steals, 0);
                assert_eq!(snap.parks, 0);
            } else {
                // Ten shards, every worker parks at each boundary.
                assert_eq!(snap.parks, 10 * workers as u64);
            }
        }
    }

    #[test]
    fn skewed_costs_register_steals() {
        let stats = EngineStats::new(4);
        run_fold_observed(
            &EngineConfig::new(4, 256),
            Some(&stats),
            0..256,
            (),
            |_| (),
            |_, job| {
                // Worker 0's span is drastically slower, so the others must
                // finish their spans and steal from it.
                if job < 64 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
            |_, _, _| {},
            |_, _| Boundary::Continue,
        );
        let snap = stats.snapshot();
        assert!(snap.steals > 0, "no steals under heavy skew: {snap:?}");
        assert_eq!(snap.worker_jobs.iter().sum::<u64>(), 256);
    }

    #[test]
    fn worker_scratch_persists_across_shards() {
        let mut inits = 0usize;
        let outcome = run_fold(
            &EngineConfig::new(4, 8),
            0..64,
            0usize,
            |_| {
                inits += 1;
                0usize
            },
            |local, _| {
                *local += 1;
                *local
            },
            |deepest, _, depth| *deepest = (*deepest).max(depth),
            |_, _| Boundary::Continue,
        );
        assert_eq!(inits, 4, "one scratch state per worker, built once");
        // 64 jobs over 4 workers: someone ran at least 16, so its local
        // counter survived many 8-job shards.
        assert!(outcome.state >= 16, "scratch reset between shards");
    }
}
