//! Quickstart: run a small study end-to-end and print every table and
//! figure the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs a scaled-down world (a few hundred sites, a 10-day crawl) in well
//! under a minute and prints Table 1, Figures 1–5, the cluster split, and
//! the sandbox census.

use malvertising::core::study::Study;
use malvertising::core::{analysis, report};
use malvertising::trace::TraceCollector;
use malvertising::types::CrawlSchedule;
use malvertising::websim::WebConfig;

fn main() {
    // One builder chain configures the whole run — world sizes, schedule,
    // parallelism, and the trace sink both stages record on.
    let collector = TraceCollector::new();
    let study = Study::builder()
        .seed(2014)
        .web(WebConfig {
            ranking_universe: 100_000,
            top_slice: 200,
            bottom_slice: 200,
            random_slice: 400,
            security_feed: 120,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        })
        .schedule(CrawlSchedule::scaled(10, 3))
        .workers(8)
        .trace(collector.sink())
        .build()
        .expect("no resume requested");

    eprintln!(
        "crawling {} sites x {} page loads each...",
        study.config.web.total_sites(),
        study.config.crawl.schedule.loads_per_site()
    );
    // The staged pipeline: crawl, then classify. The stages are public, so
    // the crawl output could be inspected or re-classified under different
    // oracle settings without re-crawling.
    let crawl = study.crawl();
    eprintln!(
        "crawl done: {} unique ads; classifying...",
        crawl.corpus.unique_count()
    );
    let results = study.classify(crawl);
    let trace = collector.finish();

    println!(
        "corpus: {} unique advertisements from {} observations over {} page loads\n",
        results.unique_ads(),
        results.total_observations,
        results.page_loads
    );

    let t1 = analysis::table1(&results);
    println!("{}", report::render_table1(&t1));

    let fig1 = analysis::fig1_network_ratios(&results, &study.world);
    println!("{}", report::render_fig1(&fig1));

    let fig2 = analysis::fig2_network_volume(&results, &study.world);
    println!("{}", report::render_fig2(&fig2));

    let split = analysis::cluster_split(&results, &study.world);
    println!("{}", report::render_cluster_split(&split));

    let fig3 = analysis::fig3_categories(&results, &study.world);
    println!("{}", report::render_fig3(&fig3));

    let (fig4, generic_share) = analysis::fig4_tlds(&results, &study.world);
    println!("{}", report::render_fig4(&fig4, generic_share));

    let fig5 = analysis::fig5_chains(&results);
    println!("{}", report::render_fig5(&fig5));

    let sandbox = analysis::sandbox_usage(&results);
    println!("{}", report::render_sandbox(&sandbox));

    let (repeats, chains) = analysis::repeat_participation(&results);
    println!(
        "repeat auction participation: {repeats} of {chains} flagged-ad chains \
         contain the same network twice\n"
    );

    let tiers = analysis::late_auction_tiers(&results, &study.world);
    println!("{}", report::render_late_auction_tiers(&tiers));

    let (defense, quality) = malvertising::core::defense::train_and_evaluate(&results, 5, 0.5);
    println!(
        "path defense (s5.2, Li et al. style): {} path nodes learned; held-out window: \
         {:.0}% of malicious paths blocked, {:.2}% of benign paths wrongly blocked\n",
        defense.node_count(),
        quality.protection_rate() * 100.0,
        quality.false_block_rate() * 100.0
    );

    let summary = results.summary_with_trace(&trace);
    println!("{}", report::render_run_metrics(&summary));
    let file = std::fs::File::create("run_summary.json").expect("create run_summary.json");
    summary
        .to_writer(std::io::BufWriter::new(file))
        .expect("write run_summary.json");
    eprintln!("wrote run_summary.json");

    let (events_path, chrome_path) = trace
        .write_dir(std::path::Path::new("trace_out"))
        .expect("write trace_out/");
    eprintln!(
        "wrote {} ({} events) and {}; inspect with `malvert trace {}`",
        events_path.display(),
        trace.events().len(),
        chrome_path.display(),
        events_path.display()
    );
}
