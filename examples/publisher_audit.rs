//! Publisher audit: the study from a website operator's point of view.
//!
//! ```text
//! cargo run --release --example publisher_audit
//! ```
//!
//! The paper's takeaway for publishers: trusting your contracted ad network
//! is not enough — arbitration means anyone's demand can land in your slots,
//! and nobody sandboxes. This example runs a scaled study and answers, for a
//! handful of popular publishers: which of *my* slots delivered
//! malvertising, which network actually filled those impressions (vs whom I
//! contracted), and would sandboxing have helped?

use malvertising::core::study::Study;
use malvertising::types::{CrawlSchedule, SiteId};
use malvertising::websim::WebConfig;
use std::collections::BTreeMap;

fn main() {
    let study = Study::builder()
        .seed(424_242)
        .web(WebConfig {
            ranking_universe: 100_000,
            top_slice: 150,
            bottom_slice: 150,
            random_slice: 300,
            security_feed: 80,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        })
        .schedule(CrawlSchedule::scaled(8, 2))
        .workers(8)
        .build()
        .expect("no resume requested");
    eprintln!(
        "running the study ({} sites)...",
        study.config.web.total_sites()
    );
    // Staged pipeline: the crawl output is a typed value, so an audit tool
    // could persist it and re-classify later without re-crawling.
    let crawl = study.crawl();
    let results = study.classify(crawl);

    // Per-site malvertising exposure.
    let mut exposure: BTreeMap<SiteId, Vec<usize>> = BTreeMap::new();
    for (idx, ad) in results.ads.iter().enumerate() {
        if ad.category.is_none() {
            continue;
        }
        for site in &ad.sites {
            exposure.entry(*site).or_default().push(idx);
        }
    }

    // Audit the five most-exposed popular publishers.
    let mut exposed_sites: Vec<(&SiteId, usize)> =
        exposure.iter().map(|(s, ads)| (s, ads.len())).collect();
    exposed_sites.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    for (site_id, count) in exposed_sites.iter().take(5) {
        let site = study.world.web.site(**site_id);
        println!(
            "\n=== {} (rank #{}, {}, {} ad slots) — {count} malicious ads delivered ===",
            site.domain,
            site.rank,
            site.category.label(),
            site.ad_slots.len()
        );
        // Whom did this publisher contract?
        let contracted: std::collections::BTreeSet<String> = site
            .ad_slots
            .iter()
            .map(|s| study.world.ads.networks()[s.network.index()].name.clone())
            .collect();
        println!("contracted networks: {}", contracted.into_iter().collect::<Vec<_>>().join(", "));
        for ad_idx in &exposure[*site_id] {
            let ad = &results.ads[*ad_idx];
            let filler = ad
                .serving_network
                .map(|n| study.world.ads.networks()[n.index()].name.clone())
                .unwrap_or_else(|| "?".to_string());
            let arbitration = if ad.max_chain_len > 1 {
                format!(" after {} auctions", ad.max_chain_len - 1)
            } else {
                String::new()
            };
            println!(
                "  [{}] filled by {filler}{arbitration} — {}",
                ad.category.map(|c| c.label()).unwrap_or("?"),
                ad.incidents
                    .first()
                    .map(|i| i.detail.clone())
                    .unwrap_or_default()
            );
        }
    }

    // The arbitration betrayal quantified: how often was the filling network
    // NOT the contracted one?
    let mut direct = 0u64;
    let mut arbitrated = 0u64;
    for ad in results.detected_ads() {
        if ad.max_chain_len > 1 {
            arbitrated += 1;
        } else {
            direct += 1;
        }
    }
    println!(
        "\nacross all detected malvertising: {arbitrated} of {} unique malicious ads arrived \
         through arbitration rather than the contracted network",
        direct + arbitrated
    );
    println!(
        "sandbox adoption across the crawl: 0 of {} iframes — §4.4's finding; hijack-class \
         ads would have been defused by `sandbox`",
        results.iframe_census.0
    );
}
