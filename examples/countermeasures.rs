//! §5 countermeasure evaluation: what would collaborative filtering and
//! sandbox adoption have done to the malvertising the study observed?
//!
//! ```text
//! cargo run --release --example countermeasures
//! ```
//!
//! Runs the same (scaled) study three times — baseline, shared rejection
//! blacklist across ad networks, and full sandbox adoption — and compares
//! delivered malvertising.

use malvertising::core::countermeasures::{evaluate, Countermeasure};
use malvertising::core::study::StudyConfig;
use malvertising::crawler::CrawlConfig;
use malvertising::types::CrawlSchedule;
use malvertising::websim::WebConfig;

fn main() {
    let config = StudyConfig {
        seed: 99,
        web: WebConfig {
            ranking_universe: 100_000,
            top_slice: 120,
            bottom_slice: 120,
            random_slice: 240,
            security_feed: 60,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: CrawlConfig {
            schedule: CrawlSchedule::scaled(8, 2),
            workers: 8,
            ..Default::default()
        },
        ..StudyConfig::default()
    };

    let runs = [
        Countermeasure::None,
        Countermeasure::SharedBlacklist {
            sharing_floor_percent: 50,
        },
        Countermeasure::ArbitrationPenalty { ban_days: 0 },
        Countermeasure::SandboxAdoption { percent: 100 },
    ];

    println!(
        "{:<32}{:>10}{:>10}{:>14}{:>16}{:>12}",
        "configuration", "corpus", "detected", "mal delivered", "mal impressions", "wall (ms)"
    );
    let mut baseline_delivered = None;
    for cm in runs {
        let outcome = evaluate(&config, cm);
        println!(
            "{:<32}{:>10}{:>10}{:>14}{:>16}{:>12.0}",
            outcome.label,
            outcome.corpus_size,
            outcome.detected,
            outcome.truly_malicious_delivered,
            outcome.malicious_observations,
            outcome.wall_us as f64 / 1000.0
        );
        match cm {
            Countermeasure::None => baseline_delivered = Some(outcome.truly_malicious_delivered),
            Countermeasure::SharedBlacklist { .. } => {
                if let Some(base) = baseline_delivered {
                    let reduction = if base == 0 {
                        0.0
                    } else {
                        (base - outcome.truly_malicious_delivered.min(base)) as f64 / base as f64
                    };
                    println!(
                        "    -> shared blacklist removed {:.0}% of delivered malicious creatives",
                        reduction * 100.0
                    );
                }
            }
            Countermeasure::ArbitrationPenalty { .. } => {
                println!(
                    "    -> offenders barred from buying resales; direct contracts persist"
                );
            }
            Countermeasure::SandboxAdoption { .. } => {
                println!(
                    "    -> sandboxing does not block delivery; it defuses top.location hijacks"
                );
            }
        }
    }
}
