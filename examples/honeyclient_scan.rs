//! Honeyclient deep-dive: point the oracle at individual ad slots and watch
//! what each served creative actually does — the Wepawet workflow.
//!
//! ```text
//! cargo run --release --example honeyclient_scan
//! ```
//!
//! Builds the simulated world, then scans a batch of slot URLs across
//! networks and days, printing the behaviour stream, the captured redirect
//! chains, downloads with their multi-engine verdicts, and the resulting
//! incident classification for every visit that triggered the framework.

use malvertising::adnet::AdWorldConfig;
use malvertising::blacklist::BlacklistService;
use malvertising::core::world::StudyWorld;
use malvertising::oracle::{Oracle, OracleStats};
use malvertising::scanner::ScanService;
use malvertising::types::{AdNetworkId, SimTime};
use malvertising::websim::WebConfig;

fn main() {
    let world = StudyWorld::build(7, &WebConfig::default(), &AdWorldConfig::default(), 1.0, 30);
    // Stand-alone oracle services (ground truth registered by the world).
    let blacklists = &world.blacklists;
    let scanner: &ScanService = &world.scanner;
    let _: &BlacklistService = blacklists;
    let stats = OracleStats::new();
    let oracle = Oracle::builder(&world.network, blacklists, scanner)
        .seeds(world.tree)
        .stats(stats.clone())
        .build();

    let mut scanned = 0;
    let mut flagged = 0;
    for network in 0..world.ads.networks().len() as u32 {
        for day in [5u32, 9] {
            let url = world.ads.serve_url(AdNetworkId(network), 500, 0);
            let time = SimTime::at(day, 1);
            let visit = oracle.honeyclient_visit(&url, time);
            let incidents = oracle.classify_visit(&visit, SimTime::at(23, 0));
            scanned += 1;
            if incidents.is_empty() {
                continue;
            }
            flagged += 1;
            println!("=== {url} @ {time} ===");
            println!("  chain hops: {}", visit.capture.redirect_chains().first().map(|c| c.len()).unwrap_or(1));
            println!("  hosts contacted:");
            for host in visit.capture.hosts() {
                println!("    {host}");
            }
            if !visit.events.is_empty() {
                println!("  behaviour:");
                for event in &visit.events {
                    println!("    {event:?}");
                }
            }
            for download in &visit.downloads {
                let report = scanner.scan(&download.bytes);
                println!(
                    "  download {} ({} bytes): {}/{} engines flag it",
                    download.filename.as_deref().unwrap_or("?"),
                    download.bytes.len(),
                    report.positives(),
                    report.total_engines
                );
                for (engine, name) in report.detections.iter().take(5) {
                    println!("    {engine}: {name}");
                }
            }
            println!("  incidents:");
            for incident in &incidents {
                println!("    [{}] {}", incident.incident_type, incident.detail);
            }
            println!();
        }
    }
    println!("scanned {scanned} slot serves; {flagged} triggered the detection framework");
    println!(
        "oracle stats: {} honeyclient visits, {} blacklist feed lookups, \
         {} script budgets exhausted",
        stats.visits(),
        stats.feed_lookups(),
        stats.budget_exhaustions()
    );
}
