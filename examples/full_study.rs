//! The full default-scale study — the run behind `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release --example full_study [seed]
//! ```
//!
//! Uses the default configuration (≈3,700 sites, 10-day schedule with two
//! refreshes — the scaled stand-in for the paper's 43k sites over three
//! months) and writes a JSON dump of the classified corpus next to the
//! printed reports.

use malvertising::core::study::{Study, StudyConfig};
use malvertising::core::{analysis, report};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let seed = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(2014);
    let mut config = StudyConfig {
        seed,
        ..StudyConfig::default()
    };
    if paper_scale {
        // The paper's real population and schedule: 43k sites, 90 days,
        // 5 refreshes per daily visit — ~19.4M page loads. Expect on the
        // order of an hour of wall-clock on 8+ cores.
        config.web = malvertising::websim::WebConfig::paper_scale();
        config.crawl.schedule = malvertising::types::CrawlSchedule::paper();
        config.crawl.workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
    } else if args.iter().any(|a| a == "--paper-sites") {
        // The paper's full site population on a compressed schedule:
        // ~516k page loads. The population-sensitive analyses (Figures 2-4,
        // cluster split) run at the paper's statistical scale.
        config.web = malvertising::websim::WebConfig::paper_scale();
        config.crawl.schedule = malvertising::types::CrawlSchedule::scaled(6, 2);
        config.crawl.workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
    }
    eprintln!(
        "building world (seed {seed}): {} sites, {} ad networks, {} campaigns",
        config.web.total_sites(),
        config.ads.network_count,
        config.ads.campaigns.total()
    );
    let t0 = Instant::now();
    let study = Study::builder()
        .config(config)
        .build()
        .expect("no resume requested");
    eprintln!("world built in {:.1?}; crawling...", t0.elapsed());

    let t1 = Instant::now();
    let results = study.run();
    eprintln!("pipeline finished in {:.1?}", t1.elapsed());

    println!(
        "== corpus ==\nunique ads: {}\nobservations: {}\npage loads: {}\n",
        results.unique_ads(),
        results.total_observations,
        results.page_loads
    );

    println!("{}", report::render_table1(&analysis::table1(&results)));
    println!(
        "{}",
        report::render_fig1(&analysis::fig1_network_ratios(&results, &study.world))
    );
    println!(
        "{}",
        report::render_fig2(&analysis::fig2_network_volume(&results, &study.world))
    );
    println!(
        "{}",
        report::render_cluster_split(&analysis::cluster_split(&results, &study.world))
    );
    println!(
        "{}",
        report::render_fig3(&analysis::fig3_categories(&results, &study.world))
    );
    let (fig4, generic) = analysis::fig4_tlds(&results, &study.world);
    println!("{}", report::render_fig4(&fig4, generic));
    println!("{}", report::render_fig5(&analysis::fig5_chains(&results)));
    println!(
        "{}",
        report::render_sandbox(&analysis::sandbox_usage(&results))
    );
    println!(
        "{}",
        report::render_late_auction_tiers(&analysis::late_auction_tiers(&results, &study.world))
    );
    let (repeats, chains) = analysis::repeat_participation(&results);
    println!(
        "repeat auction participation: {repeats} of {chains} flagged-ad chains contain \
         the same network twice\n"
    );
    let (defense, dq) = malvertising::core::defense::train_and_evaluate(&results, 5, 0.5);
    println!(
        "path defense (s5.2): {} nodes learned; protection {:.1}%, false-block {:.2}%\n",
        defense.node_count(),
        dq.protection_rate() * 100.0,
        dq.false_block_rate() * 100.0
    );
    println!(
        "{}",
        report::render_timeline(&analysis::timeline(&results))
    );
    println!(
        "{}",
        report::render_campaign_forensics(&analysis::campaign_forensics(&results, &study.world))
    );

    // Detection quality against ground truth (the simulation's advantage
    // over the original study: the truth is knowable).
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for ad in &results.ads {
        match (ad.truly_malicious, ad.category.is_some()) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            _ => {}
        }
    }
    println!(
        "== detection quality vs ground truth ==\ntp={tp} fp={fp} fn={fn_} \
         precision={:.3} recall={:.3}",
        tp as f64 / (tp + fp).max(1) as f64,
        tp as f64 / (tp + fn_).max(1) as f64
    );

    let summary = results.summary();
    println!("{}", report::render_run_metrics(&summary));

    // JSON dump of the classified ads for downstream analysis, plus the
    // RunSummary for trajectory tracking.
    let json = serde_json::to_string_pretty(&results.ads).expect("serializable");
    std::fs::write("study_ads.json", &json).expect("write study_ads.json");
    eprintln!("wrote study_ads.json ({} bytes)", json.len());
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write("run_summary.json", &json).expect("write run_summary.json");
    eprintln!("wrote run_summary.json ({} bytes)", json.len());
}
