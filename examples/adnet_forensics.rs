//! Ad-network forensics: dissect the arbitration economy without running a
//! crawl — who resells to whom, how books differ by tier, and where the
//! malicious campaigns ended up (the mechanics behind Figures 1, 2, and 5).
//!
//! ```text
//! cargo run --release --example adnet_forensics
//! ```

use malvertising::adnet::{AdWorld, AdWorldConfig, NetworkTier};
use malvertising::net::{HttpRequest, Network, TrafficCapture};
use malvertising::types::rng::SeedTree;
use malvertising::types::{AdNetworkId, SimTime};
use std::collections::BTreeMap;

fn main() {
    let tree = SeedTree::new(1337);
    let world = AdWorld::generate(tree, &AdWorldConfig::default());
    let mut network = Network::new(tree);
    world.register_servers(&mut network);

    // --- Book composition per tier. ---
    println!("== campaign books by network tier ==");
    println!(
        "{:<18}{:>8}{:>10}{:>12}{:>14}",
        "network", "tier", "book", "malicious", "filter"
    );
    for n in world.networks() {
        let book = &world.market.books[n.id.index()];
        let malicious = book
            .iter()
            .filter(|id| world.campaigns()[id.index()].is_malicious())
            .count();
        println!(
            "{:<18}{:>8}{:>10}{:>12}{:>13.0}%{}",
            n.name,
            n.tier.label(),
            book.len(),
            malicious,
            n.filter_strength * 100.0,
            if n.is_hotspot { "  <-- hotspot" } else { "" }
        );
    }

    // --- Arbitration behaviour: sample serve chains. ---
    println!("\n== sampled arbitration chains (1,000 impressions at a major network) ==");
    let sampling_started = std::time::Instant::now();
    let mut impressions = 0u64;
    let mut chain_lengths: BTreeMap<u32, u32> = BTreeMap::new();
    let mut final_tier: BTreeMap<&'static str, u32> = BTreeMap::new();
    for day in 0..25u32 {
        for slot in 0..40usize {
            let url = world.serve_url(AdNetworkId(0), slot as u32, slot % 8);
            let mut cap = TrafficCapture::new();
            if let Ok(outcome) =
                network.fetch(&HttpRequest::get(url), SimTime::at(day, slot as u32 % 5), &mut cap)
            {
                impressions += 1;
                *chain_lengths.entry(outcome.hops).or_default() += 1;
                if let Some(host) = outcome.final_url.host() {
                    if let Some(n) = world
                        .networks()
                        .iter()
                        .find(|n| n.domain == *host)
                    {
                        *final_tier.entry(n.tier.label()).or_default() += 1;
                    }
                }
            }
        }
    }
    let sampling_wall = sampling_started.elapsed();
    println!("auctions  impressions");
    for (hops, count) in &chain_lengths {
        println!("{hops:>8}  {count:>10}  {}", "#".repeat((*count as usize / 8).max(1)));
    }
    println!("\nfill by tier: {final_tier:?}");
    println!(
        "sampled {impressions} impressions in {:.1?} ({:.0} impressions/sec)",
        sampling_wall,
        impressions as f64 / sampling_wall.as_secs_f64().max(1e-9)
    );

    // --- Which tier fills long chains? ---
    println!("\n== who fills after long arbitration (>5 auctions)? ==");
    let mut long_fill: BTreeMap<&'static str, u32> = BTreeMap::new();
    for day in 0..60u32 {
        for slot in 0..30usize {
            let url = world.serve_url(AdNetworkId(1), 4_000 + slot as u32, slot % 6);
            let mut cap = TrafficCapture::new();
            if let Ok(outcome) =
                network.fetch(&HttpRequest::get(url), SimTime::at(day, 2), &mut cap)
            {
                if outcome.hops > 5 {
                    if let Some(host) = outcome.final_url.host() {
                        if let Some(n) = world.networks().iter().find(|n| n.domain == *host) {
                            *long_fill.entry(n.tier.label()).or_default() += 1;
                        }
                    }
                }
            }
        }
    }
    println!("{long_fill:?}");
    let shady = long_fill.get("shady").copied().unwrap_or(0);
    let total: u32 = long_fill.values().sum();
    if total > 0 {
        println!(
            "shady networks fill {:.0}% of impressions that went through >5 auctions \
             — the \"last auctions happen among disreputable networks\" effect (s4.3)",
            shady as f64 / total as f64 * 100.0
        );
    }

    // --- Tier summary. ---
    let count_by_tier = |tier: NetworkTier| {
        world
            .networks()
            .iter()
            .filter(|n| n.tier == tier)
            .count()
    };
    println!(
        "\nnetworks: {} major, {} mid, {} shady; {} campaigns ({} malicious)",
        count_by_tier(NetworkTier::Major),
        count_by_tier(NetworkTier::Mid),
        count_by_tier(NetworkTier::Shady),
        world.campaigns().len(),
        world.campaigns().iter().filter(|c| c.is_malicious()).count()
    );
}
