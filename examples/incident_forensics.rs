//! Incident forensics: walk one flagged advertisement from its creative to
//! the provenance of every incident the oracle raised against it.
//!
//! ```text
//! cargo run --release --example incident_forensics
//! ```
//!
//! Runs a tiny traced study, picks the first detected ad, and shows how the
//! trace subsystem joins the pieces: the ad's `creative_key` is also the
//! unit key of its events in the trace stream, so the classified record,
//! its contacted-host path, its incidents (with component / hop / evidence
//! provenance), and its spans all line up under one identifier.

use malvertising::core::study::{Study, StudyConfig};
use malvertising::trace::TraceCollector;

fn main() {
    let collector = TraceCollector::new();
    let study = Study::builder()
        .config(StudyConfig::tiny(2014))
        .trace(collector.sink())
        .build()
        .expect("no resume requested");
    eprintln!(
        "running a tiny traced study ({} sites)...",
        study.config.web.total_sites()
    );
    let results = study.run();
    let trace = collector.finish();

    let ad = results
        .detected_ads()
        .next()
        .expect("the tiny study always detects some malvertising");

    println!("flagged advertisement");
    println!("  request url : {}", ad.request_url);
    println!("  creative key: {:#018x}", ad.creative_key);
    println!("  first seen  : {}", ad.first_seen);
    println!("  category    : {}", ad.category.expect("detected"));
    println!(
        "  ground truth: {}",
        if ad.truly_malicious {
            "malicious campaign"
        } else {
            "benign (false positive)"
        }
    );

    // The ad path: every host the classification visit contacted, in
    // first-contact order. Provenance hops index into this list.
    println!("\nad path (contacted hosts):");
    for (hop, host) in ad.contacted_hosts.iter().enumerate() {
        println!("  hop {hop}: {host}");
    }

    println!("\nincidents and their provenance:");
    for incident in &ad.incidents {
        let p = &incident.provenance;
        println!("  [{}] {}", incident.incident_type, incident.detail);
        println!("    component: {}", p.component.label());
        if let Some(hop) = p.chain_hop {
            let host = ad
                .contacted_hosts
                .get(hop as usize)
                .map(String::as_str)
                .unwrap_or("?");
            println!("    chain hop: {hop} ({host})");
        }
        if !p.matched_feeds.is_empty() {
            println!("    feeds    : {}", p.matched_feeds.join(", "));
        }
        if !p.engine_votes.is_empty() {
            println!("    engines  : {}", p.engine_votes.join(", "));
        }
    }

    // Everything the pipeline recorded about this ad, straight from the
    // trace stream: the unit key joins both worlds.
    println!("\ntrace events for unit {:#018x}:", ad.creative_key);
    for event in trace.events().iter().filter(|e| e.unit == ad.creative_key) {
        let duration = event
            .wall
            .and_then(|w| w.dur_us)
            .map(|d| format!(" ({:.1} ms)", d as f64 / 1_000.0))
            .unwrap_or_default();
        println!(
            "  seq {:>2} [{}] {}{duration}",
            event.seq,
            event.kind.label(),
            event.name
        );
    }
}
